#include "crypto/sha256_midstate.h"

#include <bit>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace biot::crypto {

namespace {

inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

// N independent SHA-256 compressions run in lockstep: every working variable
// is a lane-indexed array and each round's inner loop walks the lanes, so the
// compiler can keep N copies of the dataflow in flight (unrolled / vectorized)
// instead of serializing on SHA-256's single dependency chain. The message
// schedule uses a 16-entry ring (w[i & 15]) rather than the full 64-word
// expansion to keep the working set register-resident.
template <std::size_t N>
void compress_lanes(const std::uint32_t state_in[8], const std::uint8_t* blocks,
                    Sha256Digest* out) {
  std::uint32_t w[16][N];
  for (int i = 0; i < 16; ++i)
    for (std::size_t l = 0; l < N; ++l)
      w[i][l] = load_be32(blocks + 64 * l + 4 * i);

  std::uint32_t a[N], b[N], c[N], d[N], e[N], f[N], g[N], h[N];
  for (std::size_t l = 0; l < N; ++l) {
    a[l] = state_in[0];
    b[l] = state_in[1];
    c[l] = state_in[2];
    d[l] = state_in[3];
    e[l] = state_in[4];
    f[l] = state_in[5];
    g[l] = state_in[6];
    h[l] = state_in[7];
  }

  for (int i = 0; i < 64; ++i) {
    if (i >= 16) {
      const int r = i & 15;
      for (std::size_t l = 0; l < N; ++l) {
        const std::uint32_t w15 = w[(i - 15) & 15][l];
        const std::uint32_t w2 = w[(i - 2) & 15][l];
        const std::uint32_t s0 =
            std::rotr(w15, 7) ^ std::rotr(w15, 18) ^ (w15 >> 3);
        const std::uint32_t s1 =
            std::rotr(w2, 17) ^ std::rotr(w2, 19) ^ (w2 >> 10);
        w[r][l] = w[r][l] + s0 + w[(i - 7) & 15][l] + s1;
      }
    }
    const std::uint32_t k = sha256_internal::kRoundK[i];
    for (std::size_t l = 0; l < N; ++l) {
      const std::uint32_t s1 =
          std::rotr(e[l], 6) ^ std::rotr(e[l], 11) ^ std::rotr(e[l], 25);
      const std::uint32_t ch = (e[l] & f[l]) ^ (~e[l] & g[l]);
      const std::uint32_t t1 = h[l] + s1 + ch + k + w[i & 15][l];
      const std::uint32_t s0 =
          std::rotr(a[l], 2) ^ std::rotr(a[l], 13) ^ std::rotr(a[l], 22);
      const std::uint32_t maj = (a[l] & b[l]) ^ (a[l] & c[l]) ^ (b[l] & c[l]);
      const std::uint32_t t2 = s0 + maj;
      h[l] = g[l];
      g[l] = f[l];
      f[l] = e[l];
      e[l] = d[l] + t1;
      d[l] = c[l];
      c[l] = b[l];
      b[l] = a[l];
      a[l] = t1 + t2;
    }
  }

  for (std::size_t l = 0; l < N; ++l) {
    std::uint8_t* digest = out[l].data.data();
    store_be32(digest + 0, state_in[0] + a[l]);
    store_be32(digest + 4, state_in[1] + b[l]);
    store_be32(digest + 8, state_in[2] + c[l]);
    store_be32(digest + 12, state_in[3] + d[l]);
    store_be32(digest + 16, state_in[4] + e[l]);
    store_be32(digest + 20, state_in[5] + f[l]);
    store_be32(digest + 24, state_in[6] + g[l]);
    store_be32(digest + 28, state_in[7] + h[l]);
  }
}

}  // namespace

std::size_t sha256_lanes() {
  static const std::size_t lanes = [] {
    if (const char* env = std::getenv("BIOT_SHA_LANES")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v == 1 || v == 4 || v == 8) return static_cast<std::size_t>(v);
    }
    return kSha256MaxLanes;
  }();
  return lanes;
}

Sha256Midstate::Sha256Midstate(ByteView prefix) : prefix_len_(prefix.size()) {
  if (prefix.size() % 64 != 0)
    throw std::invalid_argument(
        "Sha256Midstate: prefix must be a whole number of 64-byte blocks");
  std::memcpy(state_, sha256_internal::kInitState, sizeof(state_));
  for (std::size_t off = 0; off < prefix.size(); off += 64)
    sha256_compress(state_, prefix.data() + off);
}

void Sha256Midstate::final_block(const std::uint8_t* tail, std::size_t tail_len,
                                 std::uint8_t block[64]) const {
  std::memcpy(block, tail, tail_len);
  block[tail_len] = 0x80;
  std::memset(block + tail_len + 1, 0, 56 - tail_len - 1);
  const std::uint64_t bit_len = (prefix_len_ + tail_len) * 8;
  for (int i = 0; i < 8; ++i)
    block[56 + i] = static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
}

Sha256Digest Sha256Midstate::finish(ByteView tail) const {
  if (tail.size() > 55)
    throw std::invalid_argument("Sha256Midstate: tail must fit one block");
  std::uint8_t block[64];
  final_block(tail.data(), tail.size(), block);
  std::uint32_t state[8];
  std::memcpy(state, state_, sizeof(state));
  sha256_compress(state, block);
  Sha256Digest digest;
  for (int i = 0; i < 8; ++i) store_be32(digest.data.data() + 4 * i, state[i]);
  return digest;
}

void Sha256Midstate::finish_many(const std::uint8_t* tails,
                                 std::size_t tail_len, std::size_t count,
                                 Sha256Digest* out) const {
  if (tail_len > 55)
    throw std::invalid_argument("Sha256Midstate: tail must fit one block");
  const std::size_t lanes = sha256_lanes();
  std::size_t i = 0;
  if (lanes > 1) {
    std::uint8_t blocks[kSha256MaxLanes * 64];
    for (; i + lanes <= count; i += lanes) {
      for (std::size_t l = 0; l < lanes; ++l)
        final_block(tails + (i + l) * tail_len, tail_len, blocks + 64 * l);
      switch (lanes) {
        case 4:
          compress_lanes<4>(state_, blocks, out + i);
          break;
        default:
          compress_lanes<8>(state_, blocks, out + i);
          break;
      }
    }
  }
  for (; i < count; ++i)
    out[i] = finish(ByteView{tails + i * tail_len, tail_len});
}

void Sha256Midstate::finish_many_brute_force(const std::uint8_t* tails,
                                             std::size_t tail_len,
                                             std::size_t count,
                                             Sha256Digest* out) const {
  for (std::size_t i = 0; i < count; ++i)
    out[i] = finish(ByteView{tails + i * tail_len, tail_len});
}

}  // namespace biot::crypto
