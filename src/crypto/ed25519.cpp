#include "crypto/ed25519.h"

#include <cstring>

#include "crypto/sha512.h"

namespace biot::crypto {

namespace {
using u64 = std::uint64_t;
using u128 = unsigned __int128;

// ---- 512-bit helper arithmetic (8x64 little-endian words) ----------------

struct U512 {
  u64 w[8] = {0};
};

U512 load_le(ByteView b) {
  U512 x;
  for (std::size_t i = 0; i < b.size(); ++i)
    x.w[i / 8] |= u64{b[i]} << (8 * (i % 8));
  return x;
}

// Group order L = 2^252 + 27742317777372353535851937790883648493 (253 bits).
constexpr u64 kL[8] = {0x5812631a5cf5d3edull, 0x14def9dea2f79cd6ull,
                       0x0000000000000000ull, 0x1000000000000000ull, 0, 0, 0, 0};

// Compares x with (L << shift); returns true if x >= L<<shift.
bool geq_shifted(const U512& x, int shift) {
  // Build L << shift lazily word by word from the top.
  const int word_shift = shift / 64;
  const int bit_shift = shift % 64;
  for (int i = 7; i >= 0; --i) {
    u64 li = 0;
    const int src = i - word_shift;
    if (src >= 0 && src < 8) li = kL[src] << bit_shift;
    if (bit_shift != 0 && src - 1 >= 0) li |= kL[src - 1] >> (64 - bit_shift);
    if (x.w[i] != li) return x.w[i] > li;
  }
  return true;  // equal
}

// Subtracts (L << shift) from x; caller guarantees x >= L<<shift.
void sub_shifted(U512& x, int shift) {
  const int word_shift = shift / 64;
  const int bit_shift = shift % 64;
  u128 bor = 0;
  for (int i = 0; i < 8; ++i) {
    u64 li = 0;
    const int src = i - word_shift;
    if (src >= 0 && src < 8) li = kL[src] << bit_shift;
    if (bit_shift != 0 && src - 1 >= 0) li |= kL[src - 1] >> (64 - bit_shift);
    const u128 lhs = (u128)x.w[i];
    const u128 rhs = (u128)li + bor;
    if (lhs >= rhs) {
      x.w[i] = (u64)(lhs - rhs);
      bor = 0;
    } else {
      x.w[i] = (u64)(lhs + ((u128)1 << 64) - rhs);
      bor = 1;
    }
  }
}

// x mod L via binary shift-subtract (x up to 512 bits, L is 253 bits).
FixedBytes<32> mod_l(U512 x) {
  for (int shift = 512 - 253; shift >= 0; --shift) {
    if (geq_shifted(x, shift)) sub_shifted(x, shift);
  }
  FixedBytes<32> out;
  for (int i = 0; i < 32; ++i)
    out[i] = static_cast<std::uint8_t>(x.w[i / 8] >> (8 * (i % 8)));
  return out;
}

U512 mul_256(ByteView a, ByteView b) {
  u64 aw[4] = {0}, bw[4] = {0};
  for (int i = 0; i < 32; ++i) {
    aw[i / 8] |= u64{a[i]} << (8 * (i % 8));
    bw[i / 8] |= u64{b[i]} << (8 * (i % 8));
  }
  U512 r;
  for (int i = 0; i < 4; ++i) {
    u128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 t = (u128)aw[i] * bw[j] + r.w[i + j] + carry;
      r.w[i + j] = (u64)t;
      carry = t >> 64;
    }
    r.w[i + 4] += (u64)carry;
  }
  return r;
}

U512 add_512(U512 a, ByteView c32) {
  u128 carry = 0;
  for (int i = 0; i < 8; ++i) {
    u64 ci = 0;
    if (i < 4)
      for (int j = 0; j < 8; ++j) ci |= u64{c32[8 * i + j]} << (8 * j);
    const u128 t = (u128)a.w[i] + ci + carry;
    a.w[i] = (u64)t;
    carry = t >> 64;
  }
  return a;
}
}  // namespace

FixedBytes<32> sc_reduce64(ByteView bytes64) {
  if (bytes64.size() != 64) throw std::invalid_argument("sc_reduce64: need 64 bytes");
  return mod_l(load_le(bytes64));
}

FixedBytes<32> sc_muladd(ByteView a, ByteView b, ByteView c) {
  if (a.size() != 32 || b.size() != 32 || c.size() != 32)
    throw std::invalid_argument("sc_muladd: need 32-byte operands");
  return mod_l(add_512(mul_256(a, b), c));
}

bool sc_is_canonical(ByteView s) {
  if (s.size() != 32) return false;
  // Compare little-endian s with L.
  for (int i = 31; i >= 0; --i) {
    const std::uint8_t li = static_cast<std::uint8_t>(kL[i / 8] >> (8 * (i % 8)));
    if (s[i] != li) return s[i] < li;
  }
  return false;  // s == L is not canonical
}

// ---- Point arithmetic -----------------------------------------------------

EdPoint EdPoint::identity() {
  return EdPoint{Fe::zero(), Fe::one(), Fe::one(), Fe::zero()};
}

const EdPoint& EdPoint::base() {
  static const EdPoint b = [] {
    // Compressed generator: y = 4/5, sign(x) = 0.
    const auto pt = EdPoint::decompress(
        from_hex("5866666666666666666666666666666666666666666666666666666666666666"));
    if (!pt) throw std::logic_error("ed25519: failed to decompress base point");
    return *pt;
  }();
  return b;
}

EdPoint EdPoint::add(const EdPoint& o) const {
  // add-2008-hwcd-3 for a = -1 twisted Edwards, k = 2d.
  static const Fe k2d = fe_edwards_d() + fe_edwards_d();
  const Fe A = (Y - X) * (o.Y - o.X);
  const Fe B = (Y + X) * (o.Y + o.X);
  const Fe C = T * k2d * o.T;
  const Fe D = (Z * o.Z).mul_small(2);
  const Fe E = B - A;
  const Fe F = D - C;
  const Fe G = D + C;
  const Fe H = B + A;
  return EdPoint{E * F, G * H, F * G, E * H};
}

EdPoint EdPoint::dbl() const {
  // dbl-2008-hwcd for a = -1.
  const Fe A = X.square();
  const Fe B = Y.square();
  const Fe C = Z.square().mul_small(2);
  const Fe D = A.negate();
  const Fe E = (X + Y).square() - A - B;
  const Fe G = D + B;
  const Fe F = G - C;
  const Fe H = D - B;
  return EdPoint{E * F, G * H, F * G, E * H};
}

EdPoint EdPoint::negate() const { return EdPoint{X.negate(), Y, Z, T.negate()}; }

namespace {
// True iff p is the neutral element, for any projective representation.
// X = 0 forces affine x = 0, so p is (0, 1) or the order-2 point (0, -1);
// Y == Z picks out (0, 1) without paying compress()'s field inversion.
bool is_identity(const EdPoint& p) { return p.X.is_zero() && p.Y == p.Z; }

// [8]p via three doublings — maps any curve point into the prime-order
// subgroup (the full group is Z_L x Z_8).
EdPoint mul_cofactor(const EdPoint& p) { return p.dbl().dbl().dbl(); }
}  // namespace

EdPoint EdPoint::scalar_mul(ByteView scalar32) const {
  if (scalar32.size() != 32)
    throw std::invalid_argument("scalar_mul: need 32-byte scalar");
  EdPoint r = identity();
  for (int bit = 255; bit >= 0; --bit) {
    r = r.dbl();
    if ((scalar32[bit >> 3] >> (bit & 7)) & 1) r = r.add(*this);
  }
  return r;
}

FixedBytes<32> EdPoint::compress() const {
  const Fe zinv = Z.invert();
  const Fe x = X * zinv;
  const Fe y = Y * zinv;
  auto out = y.to_bytes();
  if (x.is_negative()) out[31] |= 0x80;
  return out;
}

std::optional<EdPoint> EdPoint::decompress(ByteView bytes32) {
  if (bytes32.size() != 32) return std::nullopt;
  const bool sign = (bytes32[31] & 0x80) != 0;
  const Fe y = Fe::from_bytes(bytes32);

  // Solve -x^2 + y^2 = 1 + d x^2 y^2  =>  x^2 = (y^2 - 1) / (d y^2 + 1).
  const Fe y2 = y.square();
  const Fe u = y2 - Fe::one();
  const Fe v = fe_edwards_d() * y2 + Fe::one();
  Fe x;
  if (!fe_sqrt_ratio(x, u, v)) return std::nullopt;

  if (x.is_zero() && sign) return std::nullopt;  // -0 is not a valid encoding
  if (x.is_negative() != sign) x = x.negate();

  return EdPoint{x, y, Fe::one(), x * y};
}

// ---- Signatures ------------------------------------------------------------

namespace {
struct ExpandedKey {
  std::uint8_t scalar[32];  // clamped lower half of SHA-512(seed)
  std::uint8_t prefix[32];  // upper half, the deterministic-nonce key
};

ExpandedKey expand(const Ed25519Seed& seed) {
  const auto h = Sha512::hash(seed.view());
  ExpandedKey out;
  std::memcpy(out.scalar, h.data.data(), 32);
  std::memcpy(out.prefix, h.data.data() + 32, 32);
  out.scalar[0] &= 248;
  out.scalar[31] &= 127;
  out.scalar[31] |= 64;
  return out;
}
}  // namespace

Ed25519KeyPair Ed25519KeyPair::from_seed(const Ed25519Seed& seed) {
  const ExpandedKey ek = expand(seed);
  const EdPoint A = EdPoint::base().scalar_mul(ByteView{ek.scalar, 32});
  return Ed25519KeyPair{seed, A.compress()};
}

Ed25519Signature ed25519_sign(const Ed25519KeyPair& kp, ByteView message) {
  const ExpandedKey ek = expand(kp.seed);

  const auto r_hash = Sha512::hash_concat({ByteView{ek.prefix, 32}, message});
  const auto r = sc_reduce64(r_hash.view());
  const auto R = EdPoint::base().scalar_mul(r.view()).compress();

  const auto k_hash =
      Sha512::hash_concat({R.view(), kp.public_key.view(), message});
  const auto k = sc_reduce64(k_hash.view());
  const auto S = sc_muladd(k.view(), ByteView{ek.scalar, 32}, r.view());

  Ed25519Signature sig;
  std::memcpy(sig.data.data(), R.data.data(), 32);
  std::memcpy(sig.data.data() + 32, S.data.data(), 32);
  return sig;
}

obs::Counter& ed25519_verify_calls() {
  static obs::Counter counter;
  return counter;
}

bool ed25519_verify(const Ed25519PublicKey& pk, ByteView message,
                    const Ed25519Signature& sig) {
  ++ed25519_verify_calls();
  const ByteView r_bytes{sig.data.data(), 32};
  const ByteView s_bytes{sig.data.data() + 32, 32};
  if (!sc_is_canonical(s_bytes)) return false;

  const auto A = EdPoint::decompress(pk.view());
  if (!A) return false;
  // Strict R: must decode AND be canonically encoded (re-compression
  // reproduces the wire bytes) — the same acceptance set as the historical
  // compare-by-encoding check, which only ever matched canonical encodings.
  const auto R = EdPoint::decompress(r_bytes);
  if (!R || !ct_equal(R->compress().view(), r_bytes)) return false;

  const auto k_hash = Sha512::hash_concat({r_bytes, pk.view(), message});
  const auto k = sc_reduce64(k_hash.view());

  // Cofactored acceptance: [8]([S]B - [k]A - R) == identity. Multiplying by
  // the cofactor folds any small-order component of A or R out of the check,
  // which is what makes this rule batchable: a random-linear-combination
  // batch equation over the prime-order subgroup decides EXACTLY this
  // predicate (up to ~2^-128), for every input. The cofactorless rule does
  // not batch soundly — for A carrying an 8-torsion component the batch
  // term z*[k]T vanishes whenever z*k = 0 mod 8, a condition an adversary
  // who controls the batch transcript can grind for in ~8 tries — so both
  // paths use the cofactored rule and stay consensus-consistent.
  const EdPoint sB = EdPoint::base().scalar_mul(s_bytes);
  const EdPoint kA = A->negate().scalar_mul(k.view());
  return is_identity(mul_cofactor(sB.add(kA).add(R->negate())));
}

std::vector<bool> ed25519_verify_batch(const std::vector<VerifyItem>& items) {
  const std::size_t n = items.size();
  std::vector<bool> out(n, false);
  if (n < 2) {
    for (std::size_t i = 0; i < n; ++i)
      out[i] = ed25519_verify(*items[i].pk, items[i].message, *items[i].sig);
    return out;
  }

  // Pre-filter: exactly the decode/canonicality rejections ed25519_verify
  // makes before any scalar multiplication (non-canonical S, undecodable A,
  // undecodable or non-canonically-encoded R). Each rejection here settles
  // the item, so it accounts one verification — the counter reads the same
  // whether a workload arrives through the batch or the scalar path.
  struct Term {
    std::size_t index;
    EdPoint neg_A;
    EdPoint neg_R;
    FixedBytes<32> k;
  };
  std::vector<Term> terms;
  terms.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const ByteView r_bytes{items[i].sig->data.data(), 32};
    const ByteView s_bytes{items[i].sig->data.data() + 32, 32};
    if (!sc_is_canonical(s_bytes)) {
      ++ed25519_verify_calls();
      continue;
    }
    const auto A = EdPoint::decompress(items[i].pk->view());
    if (!A) {
      ++ed25519_verify_calls();
      continue;
    }
    const auto R = EdPoint::decompress(r_bytes);
    if (!R || !ct_equal(R->compress().view(), r_bytes)) {
      ++ed25519_verify_calls();
      continue;
    }
    const auto k_hash =
        Sha512::hash_concat({r_bytes, items[i].pk->view(), items[i].message});
    terms.push_back(Term{i, A->negate(), R->negate(), sc_reduce64(k_hash.view())});
  }
  if (terms.empty()) return out;

  // Deterministic 128-bit coefficients z_i from a transcript of the whole
  // batch (r ‖ pk ‖ S ‖ H(msg) per item): an adversary fixing signatures
  // cannot steer the z_i after the fact. Soundness (a batch containing any
  // cofactored-invalid signature passes with probability ~2^-128) holds
  // because the final check multiplies the accumulated sum by the cofactor:
  // every term [8]([S_i]B - R_i - [k_i]A_i) then lies in the prime-order
  // subgroup, where a nonzero term survives a random 128-bit combination
  // only with ~2^-128 probability — grinding the transcript cannot help.
  // (Without the [8], an 8-torsion component in A_i or R_i survives exactly
  // when z_i*k_i = 0 mod 8, which a transcript-controlling adversary can
  // grind for in ~8 tries; see ed25519_verify.)
  Bytes transcript;
  for (const Term& t : terms) {
    const auto& it = items[t.index];
    transcript.insert(transcript.end(), it.sig->data.begin(),
                      it.sig->data.end());
    transcript.insert(transcript.end(), it.pk->data.begin(), it.pk->data.end());
    const auto msg_hash = Sha512::hash(it.message);
    transcript.insert(transcript.end(), msg_hash.data.begin(),
                      msg_hash.data.end());
  }
  const auto seed = Sha512::hash(ByteView{transcript});

  // Combined equation: sum_i z_i * ([S_i]B - R_i - [k_i]A_i) == identity,
  // i.e. [sum z_i S_i mod L]B + sum [z_i](-R_i) + sum [z_i k_i mod L](-A_i).
  FixedBytes<32> zero{};
  FixedBytes<32> s_sum = zero;
  std::vector<std::pair<FixedBytes<32>, const EdPoint*>> muls;
  muls.reserve(2 * terms.size() + 1);
  for (std::size_t j = 0; j < terms.size(); ++j) {
    std::uint8_t idx_le[8];
    for (int b = 0; b < 8; ++b)
      idx_le[b] = static_cast<std::uint8_t>(j >> (8 * b));
    const auto zh = Sha512::hash_concat({seed.view(), ByteView{idx_le, 8}});
    FixedBytes<32> z = zero;
    std::memcpy(z.data.data(), zh.data.data(), 16);  // 128-bit coefficient
    const ByteView s_bytes{items[terms[j].index].sig->data.data() + 32, 32};
    s_sum = sc_muladd(z.view(), s_bytes, s_sum.view());
    muls.emplace_back(z, &terms[j].neg_R);
    muls.emplace_back(sc_muladd(z.view(), terms[j].k.view(), zero.view()),
                      &terms[j].neg_A);
  }
  muls.emplace_back(s_sum, &EdPoint::base());

  // Shared Straus double-and-add with interleaved 4-bit fixed windows: one
  // accumulator, 4 doublings per window position across EVERY term, and per
  // term one table addition per nonzero base-16 digit. The 15-entry tables
  // (T[d] = d*P, 14 additions each) turn the ~128 set-bit additions of a
  // 256-bit scalar into ~60 digit additions — ~256 doublings + ~120
  // additions per signature instead of ~770 operations each when verified
  // individually, and the doublings amortize away as the batch grows.
  struct WindowedTerm {
    const std::uint8_t* scalar;  // 32 bytes, little-endian
    EdPoint table[15];           // table[d - 1] = d * P
  };
  std::vector<WindowedTerm> windowed;
  windowed.reserve(muls.size());
  for (const auto& [scalar, point] : muls) {
    WindowedTerm wt;
    wt.scalar = scalar.data.data();
    wt.table[0] = *point;
    for (int d = 1; d < 15; ++d) wt.table[d] = wt.table[d - 1].add(*point);
    windowed.push_back(wt);
  }
  EdPoint acc = EdPoint::identity();
  for (int w = 63; w >= 0; --w) {
    acc = acc.dbl().dbl().dbl().dbl();
    for (const auto& t : windowed) {
      const unsigned digit = (t.scalar[w >> 1] >> (4 * (w & 1))) & 0x0f;
      if (digit != 0) acc = acc.add(t.table[digit - 1]);
    }
  }

  if (is_identity(mul_cofactor(acc))) {
    ed25519_verify_calls() += terms.size();
    for (const Term& t : terms) out[t.index] = true;
    return out;
  }

  // At least one bad signature slipped past the pre-filter: identify the
  // corrupt positions individually.
  for (const Term& t : terms) {
    const auto& it = items[t.index];
    out[t.index] = ed25519_verify(*it.pk, it.message, *it.sig);
  }
  return out;
}

}  // namespace biot::crypto
