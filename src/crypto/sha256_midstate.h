// Midstate-cached SHA-256 with an N-way multi-buffer finisher.
//
// The PoW message (Eqn 6) is `parent1 ‖ parent2 ‖ nonce` = 72 bytes = two
// SHA-256 blocks, where the first block (the 64 parent bytes) is constant for
// an entire mining session. Sha256Midstate runs the compression function over
// that constant prefix once, then finishes many candidate tails (the 8-byte
// nonces) from the cached state — one compression per attempt instead of two.
//
// finish_many() additionally grinds several tails at once through a
// lane-interleaved compressor (4 or 8 lanes of plain C++, giving the compiler
// straight-line ILP / auto-vectorization room). The scalar finish() path is
// kept as the reference implementation and the two are cross-checked in
// tests/test_hash.cpp; finish_many_brute_force() exposes the scalar loop for
// that comparison.
#pragma once

#include <cstdint>

#include "crypto/sha256.h"

namespace biot::crypto {

/// Widest multi-buffer lane count compiled in. finish_many() consumes tails in
/// groups of sha256_lanes() (<= this) and drains the remainder scalarly.
inline constexpr std::size_t kSha256MaxLanes = 8;

/// Active lane count: reads BIOT_SHA_LANES (accepted values 1, 4, 8) once and
/// caches it; defaults to 8. Lane count never changes digests, only speed.
std::size_t sha256_lanes();

class Sha256Midstate {
 public:
  /// Precomputes the compression state after absorbing `prefix`, which must be
  /// a multiple of 64 bytes (whole blocks only). Throws std::invalid_argument
  /// otherwise.
  explicit Sha256Midstate(ByteView prefix);

  /// Digest of `prefix ‖ tail` where tail fits in the final padded block
  /// (tail.size() <= 55). Equivalent to Sha256::hash over the concatenation.
  Sha256Digest finish(ByteView tail) const;

  /// Digests of `prefix ‖ tails[i]` for `count` equal-length tails packed
  /// contiguously (tails + i*tail_len, tail_len <= 55). Byte-identical to
  /// calling finish() per tail; grinds sha256_lanes() tails per pass.
  void finish_many(const std::uint8_t* tails, std::size_t tail_len,
                   std::size_t count, Sha256Digest* out) const;

  /// Scalar reference twin of finish_many(), used by cross-check tests.
  void finish_many_brute_force(const std::uint8_t* tails, std::size_t tail_len,
                               std::size_t count, Sha256Digest* out) const;

  std::uint64_t prefix_len() const { return prefix_len_; }

 private:
  void final_block(const std::uint8_t* tail, std::size_t tail_len,
                   std::uint8_t block[64]) const;

  std::uint32_t state_[8];
  std::uint64_t prefix_len_;
};

}  // namespace biot::crypto
