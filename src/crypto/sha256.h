// SHA-256 (FIPS 180-4), implemented from scratch.
// Used for transaction hashing, the PoW target check (Eqn 6 of the paper),
// HMAC and HKDF.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace biot::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
using Sha256Digest = FixedBytes<kSha256DigestSize>;

namespace sha256_internal {
/// FIPS 180-4 round constants and initial hash value H(0), shared with the
/// multi-buffer compressor in sha256_midstate.cpp.
extern const std::uint32_t kRoundK[64];
extern const std::uint32_t kInitState[8];
}  // namespace sha256_internal

/// One SHA-256 compression: folds a 64-byte message block into `state`
/// (the eight working words). Building block for the streaming Sha256 class
/// and the midstate-cached PoW path (crypto/sha256_midstate.h).
void sha256_compress(std::uint32_t state[8], const std::uint8_t* block64);

/// Incremental SHA-256. Typical use:
///   Sha256 h; h.update(a); h.update(b); auto d = h.finish();
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(ByteView data);
  /// Finalizes and returns the digest; the object must be reset() before reuse.
  Sha256Digest finish();

  /// One-shot convenience.
  static Sha256Digest hash(ByteView data);
  /// Hash of the concatenation of several buffers.
  static Sha256Digest hash_concat(std::initializer_list<ByteView> parts);

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[8];
  std::uint64_t total_len_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
};

}  // namespace biot::crypto
