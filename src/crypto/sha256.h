// SHA-256 (FIPS 180-4), implemented from scratch.
// Used for transaction hashing, the PoW target check (Eqn 6 of the paper),
// HMAC and HKDF.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace biot::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
using Sha256Digest = FixedBytes<kSha256DigestSize>;

/// Incremental SHA-256. Typical use:
///   Sha256 h; h.update(a); h.update(b); auto d = h.finish();
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(ByteView data);
  /// Finalizes and returns the digest; the object must be reset() before reuse.
  Sha256Digest finish();

  /// One-shot convenience.
  static Sha256Digest hash(ByteView data);
  /// Hash of the concatenation of several buffers.
  static Sha256Digest hash_concat(std::initializer_list<ByteView> parts);

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[8];
  std::uint64_t total_len_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
};

}  // namespace biot::crypto
