// Cryptographically secure PRNG built on the ChaCha20 block function
// (RFC 8439). Key generation, IVs and protocol nonces draw from here.
// A fixed seed gives deterministic keys for tests; the default constructor
// seeds from the operating system.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace biot::crypto {

/// Runs the raw ChaCha20 block function: 16 input words -> 64 output bytes.
/// Exposed for the RFC 8439 test vector.
void chacha20_block(const std::uint32_t state[16], std::uint8_t out[64]);

class Csprng {
 public:
  /// Seeds from std::random_device (OS entropy).
  Csprng();
  /// Deterministic stream for reproducible tests/simulations.
  explicit Csprng(std::uint64_t seed);
  /// Full-entropy 32-byte seed.
  explicit Csprng(const std::array<std::uint8_t, 32>& key);

  void fill(MutByteView out);
  Bytes bytes(std::size_t n);
  std::uint64_t next_u64();

  template <std::size_t N>
  FixedBytes<N> fixed() {
    FixedBytes<N> out;
    fill(MutByteView{out.data.data(), N});
    return out;
  }

 private:
  void refill();

  std::uint32_t state_[16];
  std::uint8_t buffer_[64];
  std::size_t buffer_pos_ = 64;  // empty
};

}  // namespace biot::crypto
