// A node identity bundles the two key pairs every B-IoT entity owns:
// an Ed25519 signing pair (the blockchain account, paper Eqn 1) and an
// X25519 encryption pair (for the Fig 4 key-distribution handshake).
#pragma once

#include <string>

#include "crypto/csprng.h"
#include "crypto/ed25519.h"
#include "crypto/x25519.h"

namespace biot::crypto {

/// Public half of an identity — what other parties see on chain.
struct PublicIdentity {
  Ed25519PublicKey sign_key;
  X25519PublicKey box_key;

  /// Short printable identifier (first 8 hex chars of the signing key).
  std::string short_id() const { return sign_key.hex().substr(0, 8); }

  friend bool operator==(const PublicIdentity&, const PublicIdentity&) = default;
};

/// Full identity with secret material. Kept by the owning node only.
class Identity {
 public:
  /// Generates fresh random key pairs.
  static Identity generate(Csprng& rng) {
    Identity id;
    id.sign_pair_ = Ed25519KeyPair::from_seed(rng.fixed<32>());
    id.box_pair_ = X25519KeyPair::generate(rng);
    return id;
  }

  /// Deterministic identity for tests (derived from a seed integer).
  static Identity deterministic(std::uint64_t seed) {
    Csprng rng(seed ^ 0x1d203f4a5b6c7d8eull);
    return generate(rng);
  }

  const Ed25519KeyPair& sign_pair() const { return sign_pair_; }
  const X25519KeyPair& box_pair() const { return box_pair_; }

  PublicIdentity public_identity() const {
    return PublicIdentity{sign_pair_.public_key, box_pair_.public_key};
  }

  Ed25519Signature sign(ByteView message) const {
    return ed25519_sign(sign_pair_, message);
  }

 private:
  Identity() = default;
  Ed25519KeyPair sign_pair_{};
  X25519KeyPair box_pair_{};
};

}  // namespace biot::crypto
