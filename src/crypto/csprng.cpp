#include "crypto/csprng.h"

#include <bit>
#include <cstring>
#include <random>

namespace biot::crypto {

namespace {
inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = std::rotl(d, 16);
  c += d; b ^= c; b = std::rotl(b, 12);
  a += b; d ^= a; d = std::rotl(d, 8);
  c += d; b ^= c; b = std::rotl(b, 7);
}

constexpr std::uint32_t kSigma[4] = {0x61707865, 0x3320646e, 0x79622d32, 0x6b206574};
}  // namespace

void chacha20_block(const std::uint32_t state[16], std::uint8_t out[64]) {
  std::uint32_t x[16];
  std::memcpy(x, state, sizeof(x));
  for (int i = 0; i < 10; ++i) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = x[i] + state[i];
    out[4 * i + 0] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
}

Csprng::Csprng() {
  std::array<std::uint8_t, 32> key;
  std::random_device rd;
  for (std::size_t i = 0; i < key.size(); i += 4) {
    const std::uint32_t w = rd();
    key[i] = static_cast<std::uint8_t>(w);
    key[i + 1] = static_cast<std::uint8_t>(w >> 8);
    key[i + 2] = static_cast<std::uint8_t>(w >> 16);
    key[i + 3] = static_cast<std::uint8_t>(w >> 24);
  }
  *this = Csprng(key);
}

Csprng::Csprng(std::uint64_t seed) {
  std::array<std::uint8_t, 32> key{};
  for (int i = 0; i < 8; ++i) key[i] = static_cast<std::uint8_t>(seed >> (8 * i));
  *this = Csprng(key);
}

Csprng::Csprng(const std::array<std::uint8_t, 32>& key) {
  for (int i = 0; i < 4; ++i) state_[i] = kSigma[i];
  for (int i = 0; i < 8; ++i) {
    state_[4 + i] = std::uint32_t{key[4 * i]} | (std::uint32_t{key[4 * i + 1]} << 8) |
                    (std::uint32_t{key[4 * i + 2]} << 16) |
                    (std::uint32_t{key[4 * i + 3]} << 24);
  }
  state_[12] = 0;  // block counter
  state_[13] = 0;
  state_[14] = 0;  // nonce (fixed; each instance is single-stream)
  state_[15] = 0;
}

void Csprng::refill() {
  chacha20_block(state_, buffer_);
  buffer_pos_ = 0;
  if (++state_[12] == 0) ++state_[13];  // 64-bit counter across words 12/13
}

void Csprng::fill(MutByteView out) {
  std::size_t off = 0;
  while (off < out.size()) {
    if (buffer_pos_ == 64) refill();
    const std::size_t take = std::min(out.size() - off, 64 - buffer_pos_);
    std::memcpy(out.data() + off, buffer_ + buffer_pos_, take);
    buffer_pos_ += take;
    off += take;
  }
}

Bytes Csprng::bytes(std::size_t n) {
  Bytes out(n);
  fill(MutByteView{out.data(), n});
  return out;
}

std::uint64_t Csprng::next_u64() {
  std::uint8_t b[8];
  fill(MutByteView{b, 8});
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{b[i]} << (8 * i);
  return v;
}

}  // namespace biot::crypto
