// AES modes of operation: CBC with PKCS#7 padding and CTR (stream).
// Sensor payload encryption in the data authority management method uses
// CBC; ECIES uses CTR with HMAC (encrypt-then-MAC).
#pragma once

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/aes.h"

namespace biot::crypto {

/// Appends PKCS#7 padding to reach a multiple of the AES block size.
Bytes pkcs7_pad(ByteView data);

/// Strips and validates PKCS#7 padding.
Result<Bytes> pkcs7_unpad(ByteView data);

/// AES-CBC encrypt with PKCS#7 padding. `iv` must be 16 bytes.
Bytes aes_cbc_encrypt(const Aes& aes, ByteView iv, ByteView plaintext);

/// AES-CBC decrypt; fails (kDecryptFailed) on bad length or padding.
Result<Bytes> aes_cbc_decrypt(const Aes& aes, ByteView iv, ByteView ciphertext);

/// AES-CTR keystream XOR (encryption == decryption). `nonce` must be 16 bytes
/// and is used as the initial counter block (incremented big-endian).
Bytes aes_ctr_xor(const Aes& aes, ByteView nonce, ByteView data);

}  // namespace biot::crypto
