// X25519 Diffie–Hellman (RFC 7748) and an ECIES-style authenticated
// public-key encryption built from X25519 + HKDF + AES-CTR + HMAC.
// The Fig 4 key-distribution protocol encrypts M1 to the device's public
// encryption key with ecies_seal.
#pragma once

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/csprng.h"

namespace biot::crypto {

using X25519PublicKey = FixedBytes<32>;
using X25519SecretKey = FixedBytes<32>;

/// Scalar multiplication on the Montgomery curve: out = scalar * u-point.
FixedBytes<32> x25519(const FixedBytes<32>& scalar, const FixedBytes<32>& u_point);

/// Public key for a (clamped) secret scalar: scalar * basepoint(9).
X25519PublicKey x25519_public(const X25519SecretKey& secret);

struct X25519KeyPair {
  X25519SecretKey secret;
  X25519PublicKey public_key;

  static X25519KeyPair generate(Csprng& rng);
  static X25519KeyPair from_secret(const X25519SecretKey& secret);
};

/// ECIES envelope: ephemeral pubkey (32) || AES-CTR ciphertext || HMAC tag (32).
/// Keys derive via HKDF-SHA256 from the X25519 shared secret; encrypt-then-MAC.
Bytes ecies_seal(const X25519PublicKey& recipient, ByteView plaintext, Csprng& rng);

/// Opens an ECIES envelope; kDecryptFailed on MAC mismatch or truncation.
Result<Bytes> ecies_open(const X25519KeyPair& recipient, ByteView envelope);

}  // namespace biot::crypto
