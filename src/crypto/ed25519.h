// Ed25519 signatures (RFC 8032), from scratch on top of field25519.
// Every B-IoT entity (manager, gateway, IoT device) signs transactions and
// protocol messages with an Ed25519 key; the public key is the entity's
// blockchain identity (paper Section IV-A).
#pragma once

#include <optional>
#include <vector>

#include "common/bytes.h"
#include "crypto/field25519.h"
#include "obs/metrics.h"

namespace biot::crypto {

using Ed25519Seed = FixedBytes<32>;
using Ed25519PublicKey = FixedBytes<32>;
using Ed25519Signature = FixedBytes<64>;

/// A point on the Edwards curve in extended homogeneous coordinates.
struct EdPoint {
  Fe X, Y, Z, T;

  static EdPoint identity();
  static const EdPoint& base();  // generator B (y = 4/5)

  EdPoint add(const EdPoint& other) const;
  EdPoint dbl() const;
  EdPoint negate() const;
  /// Scalar multiplication, scalar given as 32 little-endian bytes.
  EdPoint scalar_mul(ByteView scalar32) const;

  FixedBytes<32> compress() const;
  static std::optional<EdPoint> decompress(ByteView bytes32);
};

/// Reduces a 64-byte little-endian value mod the group order L.
FixedBytes<32> sc_reduce64(ByteView bytes64);
/// (a*b + c) mod L; all operands 32-byte little-endian.
FixedBytes<32> sc_muladd(ByteView a, ByteView b, ByteView c);
/// True iff s (32 bytes LE) is canonical, i.e. < L.
bool sc_is_canonical(ByteView s);

/// Expanded private key material derived from a 32-byte seed.
struct Ed25519KeyPair {
  Ed25519Seed seed;
  Ed25519PublicKey public_key;

  static Ed25519KeyPair from_seed(const Ed25519Seed& seed);
};

/// Signs `message` with the key pair (deterministic per RFC 8032).
Ed25519Signature ed25519_sign(const Ed25519KeyPair& kp, ByteView message);

/// Verifies under the COFACTORED rule: strict about canonical S and the R
/// encoding, then accepts iff [8]([S]B - [k]A - R) is the identity. RFC 8032
/// permits either the cofactored or the cofactorless group equation; the
/// cofactored one is the consensus-safe choice because it is the unique rule
/// a random-linear-combination batch can decide exactly — scalar and batch
/// ingress therefore always agree, even for public keys or R values carrying
/// a small-order component. Returns false on any failure.
bool ed25519_verify(const Ed25519PublicKey& pk, ByteView message,
                    const Ed25519Signature& sig);

/// Signature-verification work counter: +1 per ed25519_verify call (accepts
/// and rejections alike), +1 per item settled by ed25519_verify_batch —
/// whether by the canonicality pre-filter, the combined equation, or the
/// per-item fallback. Batch and scalar ingress account identically, so tests
/// can pin "each admitted transaction is verified exactly once" regardless
/// of path.
obs::Counter& ed25519_verify_calls();

/// One (public key, message, signature) triple for batch verification. The
/// pointed-to key/signature must outlive the ed25519_verify_batch call.
struct VerifyItem {
  const Ed25519PublicKey* pk = nullptr;
  ByteView message;
  const Ed25519Signature* sig = nullptr;
};

/// Batch verification: returns per-item validity under the same cofactored
/// rule as ed25519_verify (equal to the per-item result except with the
/// ~2^-128 probability that a bad batch defeats the 128-bit random linear
/// combination). Sound batches (the common case) are settled with ONE
/// combined group equation over a shared Straus double-and-add — roughly 3x
/// cheaper than verifying n signatures individually at n = 8. When the
/// combined equation fails (at least one bad signature), the batch falls
/// back to per-item verification to identify the corrupt positions.
std::vector<bool> ed25519_verify_batch(const std::vector<VerifyItem>& items);

}  // namespace biot::crypto
