// AES block cipher (FIPS 197) for 128/192/256-bit keys, from scratch.
// The paper's data authority management method encrypts sensitive sensor data
// with AES before posting transactions (Section IV-C, Fig 10).
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace biot::crypto {

inline constexpr std::size_t kAesBlockSize = 16;

/// A fully-keyed AES instance; encrypts/decrypts single 16-byte blocks.
/// Modes of operation live in aes_modes.h.
class Aes {
 public:
  /// Key must be 16, 24 or 32 bytes; throws std::invalid_argument otherwise.
  explicit Aes(ByteView key);

  void encrypt_block(const std::uint8_t in[kAesBlockSize],
                     std::uint8_t out[kAesBlockSize]) const;
  void decrypt_block(const std::uint8_t in[kAesBlockSize],
                     std::uint8_t out[kAesBlockSize]) const;

  int rounds() const noexcept { return rounds_; }

 private:
  // Round keys as 4-byte words: 4 * (rounds + 1) words.
  std::uint32_t round_keys_[60];
  int rounds_;
};

}  // namespace biot::crypto
