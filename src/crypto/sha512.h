// SHA-512 (FIPS 180-4), required by Ed25519 (RFC 8032) key expansion and
// challenge derivation.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace biot::crypto {

inline constexpr std::size_t kSha512DigestSize = 64;
using Sha512Digest = FixedBytes<kSha512DigestSize>;

class Sha512 {
 public:
  Sha512() { reset(); }

  void reset();
  void update(ByteView data);
  Sha512Digest finish();

  static Sha512Digest hash(ByteView data);
  static Sha512Digest hash_concat(std::initializer_list<ByteView> parts);

 private:
  void process_block(const std::uint8_t* block);

  std::uint64_t state_[8];
  std::uint64_t total_len_ = 0;  // bytes processed (paper-scale inputs never overflow)
  std::uint8_t buffer_[128];
  std::size_t buffer_len_ = 0;
};

}  // namespace biot::crypto
