#include "crypto/x25519.h"

#include <cstring>

#include "crypto/aes.h"
#include "crypto/aes_modes.h"
#include "crypto/field25519.h"
#include "crypto/hmac.h"

namespace biot::crypto {

namespace {
void clamp(std::uint8_t k[32]) {
  k[0] &= 248;
  k[31] &= 127;
  k[31] |= 64;
}
}  // namespace

FixedBytes<32> x25519(const FixedBytes<32>& scalar, const FixedBytes<32>& u_point) {
  std::uint8_t k[32];
  std::memcpy(k, scalar.data.data(), 32);
  clamp(k);

  const Fe x1 = Fe::from_bytes(u_point.view());
  Fe x2 = Fe::one(), z2 = Fe::zero();
  Fe x3 = x1, z3 = Fe::one();
  std::uint64_t swap = 0;

  // RFC 7748 Montgomery ladder; a24 = (486662 - 2) / 4.
  for (int t = 254; t >= 0; --t) {
    const std::uint64_t bit = (k[t >> 3] >> (t & 7)) & 1;
    swap ^= bit;
    Fe::cswap(x2, x3, swap);
    Fe::cswap(z2, z3, swap);
    swap = bit;

    const Fe A = x2 + z2;
    const Fe AA = A.square();
    const Fe B = x2 - z2;
    const Fe BB = B.square();
    const Fe E = AA - BB;
    const Fe C = x3 + z3;
    const Fe D = x3 - z3;
    const Fe DA = D * A;
    const Fe CB = C * B;
    x3 = (DA + CB).square();
    z3 = x1 * (DA - CB).square();
    x2 = AA * BB;
    z2 = E * (AA + E.mul_small(121665));
  }
  Fe::cswap(x2, x3, swap);
  Fe::cswap(z2, z3, swap);

  return (x2 * z2.invert()).to_bytes();
}

X25519PublicKey x25519_public(const X25519SecretKey& secret) {
  FixedBytes<32> base{};
  base[0] = 9;
  return x25519(secret, base);
}

X25519KeyPair X25519KeyPair::generate(Csprng& rng) {
  return from_secret(rng.fixed<32>());
}

X25519KeyPair X25519KeyPair::from_secret(const X25519SecretKey& secret) {
  return X25519KeyPair{secret, x25519_public(secret)};
}

namespace {
constexpr std::size_t kTagSize = 32;
constexpr char kKdfInfo[] = "biot-ecies-v1";

struct DerivedKeys {
  Bytes enc_key;   // 32 bytes, AES-256
  Bytes mac_key;   // 32 bytes
  Bytes ctr_nonce; // 16 bytes
};

DerivedKeys derive(ByteView shared_secret, ByteView ephemeral_pub, ByteView recipient_pub) {
  const Bytes salt = concat({ephemeral_pub, recipient_pub});
  const Bytes okm = hkdf(salt, shared_secret,
                         to_bytes(std::string_view{kKdfInfo}), 80);
  DerivedKeys keys;
  keys.enc_key.assign(okm.begin(), okm.begin() + 32);
  keys.mac_key.assign(okm.begin() + 32, okm.begin() + 64);
  keys.ctr_nonce.assign(okm.begin() + 64, okm.begin() + 80);
  return keys;
}
}  // namespace

Bytes ecies_seal(const X25519PublicKey& recipient, ByteView plaintext, Csprng& rng) {
  const auto eph = X25519KeyPair::generate(rng);
  const auto shared = x25519(eph.secret, recipient);
  const auto keys = derive(shared.view(), eph.public_key.view(), recipient.view());

  const Aes aes(keys.enc_key);
  const Bytes ct = aes_ctr_xor(aes, keys.ctr_nonce, plaintext);
  const auto tag = hmac_sha256_concat(keys.mac_key, {eph.public_key.view(), ct});

  return concat({eph.public_key.view(), ct, tag.view()});
}

Result<Bytes> ecies_open(const X25519KeyPair& recipient, ByteView envelope) {
  if (envelope.size() < 32 + kTagSize)
    return Status::error(ErrorCode::kDecryptFailed, "ecies: envelope too short");

  const ByteView eph_pub = envelope.subspan(0, 32);
  const ByteView ct = envelope.subspan(32, envelope.size() - 32 - kTagSize);
  const ByteView tag = envelope.subspan(envelope.size() - kTagSize);

  const auto shared = x25519(recipient.secret, FixedBytes<32>::from_view(eph_pub));
  const auto keys = derive(shared.view(), eph_pub, recipient.public_key.view());

  const auto expect_tag = hmac_sha256_concat(keys.mac_key, {eph_pub, ct});
  if (!ct_equal(expect_tag.view(), tag))
    return Status::error(ErrorCode::kDecryptFailed, "ecies: MAC mismatch");

  const Aes aes(keys.enc_key);
  return aes_ctr_xor(aes, keys.ctr_nonce, ct);
}

}  // namespace biot::crypto
