#include "crypto/field25519.h"

#include <stdexcept>

namespace biot::crypto {

namespace {
using u64 = std::uint64_t;
using u128 = unsigned __int128;

constexpr u64 kMask51 = (u64{1} << 51) - 1;

inline u64 load64_le(const std::uint8_t* p) {
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= u64{p[i]} << (8 * i);
  return v;
}

// Carry-propagates limbs so each fits in 51 bits (with small headroom).
inline void carry(u64 h[5]) {
  u64 c;
  c = h[0] >> 51; h[0] &= kMask51; h[1] += c;
  c = h[1] >> 51; h[1] &= kMask51; h[2] += c;
  c = h[2] >> 51; h[2] &= kMask51; h[3] += c;
  c = h[3] >> 51; h[3] &= kMask51; h[4] += c;
  c = h[4] >> 51; h[4] &= kMask51; h[0] += c * 19;
  c = h[0] >> 51; h[0] &= kMask51; h[1] += c;
}

// Reduces to the unique representative < p.
inline void freeze(u64 h[5]) {
  carry(h);
  // After carry, value < 2^255 + small. Add 19 and see if it wraps 2^255:
  // compute h + 19, propagate; if bit 255 set, the original was >= p.
  u64 t[5] = {h[0] + 19, h[1], h[2], h[3], h[4]};
  u64 c;
  c = t[0] >> 51; t[0] &= kMask51; t[1] += c;
  c = t[1] >> 51; t[1] &= kMask51; t[2] += c;
  c = t[2] >> 51; t[2] &= kMask51; t[3] += c;
  c = t[3] >> 51; t[3] &= kMask51; t[4] += c;
  const u64 ge_p = t[4] >> 51;  // 1 iff h >= p
  t[4] &= kMask51;
  // Select t (h - p + 2^255 truncated == h - p) when ge_p, else h.
  const u64 m = 0 - ge_p;
  for (int i = 0; i < 5; ++i) h[i] = (t[i] & m) | (h[i] & ~m);
}
}  // namespace

Fe Fe::from_bytes(ByteView b) {
  if (b.size() != 32) throw std::invalid_argument("Fe::from_bytes: need 32 bytes");
  Fe f;
  f.v[0] = load64_le(b.data()) & kMask51;
  f.v[1] = (load64_le(b.data() + 6) >> 3) & kMask51;
  f.v[2] = (load64_le(b.data() + 12) >> 6) & kMask51;
  f.v[3] = (load64_le(b.data() + 19) >> 1) & kMask51;
  f.v[4] = (load64_le(b.data() + 24) >> 12) & kMask51;
  return f;
}

FixedBytes<32> Fe::to_bytes() const {
  u64 h[5] = {v[0], v[1], v[2], v[3], v[4]};
  freeze(h);
  FixedBytes<32> out;
  // Pack 5x51-bit limbs into four 64-bit words, little-endian.
  u64 w0 = h[0] | (h[1] << 51);
  u64 w1 = (h[1] >> 13) | (h[2] << 38);
  u64 w2 = (h[2] >> 26) | (h[3] << 25);
  u64 w3 = (h[3] >> 39) | (h[4] << 12);
  const u64 words[4] = {w0, w1, w2, w3};
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 8; ++j)
      out[8 * i + j] = static_cast<std::uint8_t>(words[i] >> (8 * j));
  return out;
}

Fe operator+(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + b.v[i];
  carry(r.v);
  return r;
}

Fe operator-(const Fe& a, const Fe& b) {
  // Add 2p (in radix-51 form) to keep limbs non-negative before subtracting.
  static constexpr u64 k2p[5] = {0xfffffffffffda, 0xffffffffffffe, 0xffffffffffffe,
                                 0xffffffffffffe, 0xffffffffffffe};
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + k2p[i] - b.v[i];
  carry(r.v);
  return r;
}

Fe Fe::negate() const { return Fe::zero() - *this; }

Fe operator*(const Fe& f, const Fe& g) {
  const u64 f0 = f.v[0], f1 = f.v[1], f2 = f.v[2], f3 = f.v[3], f4 = f.v[4];
  const u64 g0 = g.v[0], g1 = g.v[1], g2 = g.v[2], g3 = g.v[3], g4 = g.v[4];
  const u64 g1_19 = g1 * 19, g2_19 = g2 * 19, g3_19 = g3 * 19, g4_19 = g4 * 19;

  u128 h0 = (u128)f0 * g0 + (u128)f1 * g4_19 + (u128)f2 * g3_19 + (u128)f3 * g2_19 + (u128)f4 * g1_19;
  u128 h1 = (u128)f0 * g1 + (u128)f1 * g0 + (u128)f2 * g4_19 + (u128)f3 * g3_19 + (u128)f4 * g2_19;
  u128 h2 = (u128)f0 * g2 + (u128)f1 * g1 + (u128)f2 * g0 + (u128)f3 * g4_19 + (u128)f4 * g3_19;
  u128 h3 = (u128)f0 * g3 + (u128)f1 * g2 + (u128)f2 * g1 + (u128)f3 * g0 + (u128)f4 * g4_19;
  u128 h4 = (u128)f0 * g4 + (u128)f1 * g3 + (u128)f2 * g2 + (u128)f3 * g1 + (u128)f4 * g0;

  Fe r;
  u128 c;
  c = h0 >> 51; h0 &= kMask51; h1 += c;
  c = h1 >> 51; h1 &= kMask51; h2 += c;
  c = h2 >> 51; h2 &= kMask51; h3 += c;
  c = h3 >> 51; h3 &= kMask51; h4 += c;
  c = h4 >> 51; h4 &= kMask51;
  h0 += c * 19;
  c = h0 >> 51; h0 &= kMask51; h1 += c;

  r.v[0] = (u64)h0; r.v[1] = (u64)h1; r.v[2] = (u64)h2;
  r.v[3] = (u64)h3; r.v[4] = (u64)h4;
  return r;
}

Fe Fe::square() const { return *this * *this; }

Fe Fe::mul_small(std::uint64_t cst) const {
  Fe r;
  u128 c = 0;
  for (int i = 0; i < 5; ++i) {
    const u128 t = (u128)v[i] * cst + c;
    r.v[i] = (u64)t & kMask51;
    c = t >> 51;
  }
  r.v[0] += (u64)c * 19;
  carry(r.v);
  return r;
}

namespace {
// x^e for a fixed 255-bit exponent given as 32 little-endian bytes.
Fe pow_bytes(const Fe& x, const std::uint8_t e[32]) {
  Fe result = Fe::one();
  // MSB-first square-and-multiply.
  for (int bit = 254; bit >= 0; --bit) {
    result = result.square();
    if ((e[bit >> 3] >> (bit & 7)) & 1) result = result * x;
  }
  return result;
}
}  // namespace

Fe Fe::invert() const {
  // p - 2 = 2^255 - 21 -> bytes little-endian.
  std::uint8_t e[32];
  for (int i = 0; i < 32; ++i) e[i] = 0xff;
  e[0] = 0xeb;  // 0xff - 20
  e[31] = 0x7f;
  return pow_bytes(*this, e);
}

Fe Fe::pow_p58() const {
  // (p - 5) / 8 = (2^255 - 24)/8 = 2^252 - 3 -> bytes little-endian.
  std::uint8_t e[32];
  for (int i = 0; i < 32; ++i) e[i] = 0xff;
  e[0] = 0xfd;
  e[31] = 0x0f;
  return pow_bytes(*this, e);
}

bool Fe::is_zero() const {
  const auto b = to_bytes();
  std::uint8_t acc = 0;
  for (auto x : b.data) acc |= x;
  return acc == 0;
}

bool Fe::is_negative() const { return to_bytes()[0] & 1; }

void Fe::cswap(Fe& a, Fe& b, std::uint64_t flag) {
  const u64 m = 0 - flag;
  for (int i = 0; i < 5; ++i) {
    const u64 t = m & (a.v[i] ^ b.v[i]);
    a.v[i] ^= t;
    b.v[i] ^= t;
  }
}

bool operator==(const Fe& a, const Fe& b) { return a.to_bytes() == b.to_bytes(); }

const Fe& fe_sqrtm1() {
  static const Fe k = Fe::from_bytes(
      from_hex("b0a00e4a271beec478e42fad0618432fa7d7fb3d99004d2b0bdfc14f8024832b"));
  return k;
}

const Fe& fe_edwards_d() {
  static const Fe k = Fe::from_bytes(
      from_hex("a3785913ca4deb75abd841414d0a700098e879777940c78c73fe6f2bee6c0352"));
  return k;
}

bool fe_sqrt_ratio(Fe& out, const Fe& u, const Fe& v) {
  // Candidate root: x = u * v^3 * (u * v^7)^((p-5)/8)  (RFC 8032, 5.1.3).
  const Fe v3 = v.square() * v;
  const Fe v7 = v3.square() * v;
  Fe x = (u * v3) * (u * v7).pow_p58();

  const Fe vxx = v * x.square();
  if (vxx == u) {
    out = x;
    return true;
  }
  if (vxx == u.negate()) {
    out = x * fe_sqrtm1();
    return true;
  }
  return false;
}

}  // namespace biot::crypto
