// Deterministic randomness used throughout the simulator and tests.
// Cryptographic randomness lives in crypto/csprng.h; this header provides the
// fast, seedable, *non*-cryptographic stream used for workload generation,
// latency sampling and tip selection.
#pragma once

#include <cstdint>
#include <vector>

namespace biot {

/// SplitMix64 — tiny, fast, excellent statistical quality; the canonical
/// choice for seeding and simulation PRNG duties.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Exponential with the given mean (inter-arrival times, latency tails).
  double exponential(double mean) noexcept;

  /// Gaussian via polar Box–Muller.
  double gaussian(double mean, double stddev) noexcept;

  /// Geometric: number of Bernoulli(p) trials until first success (>= 1).
  /// Models PoW nonce attempts with p = 2^-difficulty.
  std::uint64_t geometric(double p) noexcept;

  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Picks a uniformly random index into a container of size n.
  std::size_t index(std::size_t n) noexcept { return static_cast<std::size_t>(below(n)); }

  /// Derives an independent child stream (for per-node generators).
  Rng fork() noexcept { return Rng(next() ^ 0xd2b74407b1ce6e93ull); }

 private:
  std::uint64_t state_;
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace biot
