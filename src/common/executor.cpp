#include "common/executor.h"

#include <utility>

namespace biot {

ThreadPoolExecutor::ThreadPoolExecutor(unsigned threads) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPoolExecutor::~ThreadPoolExecutor() { shutdown(); }

void ThreadPoolExecutor::shutdown() {
  {
    const sync::MutexLock lock(mutex_);
    if (shutdown_) return;  // already drained and joined
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPoolExecutor::submit(std::function<void()> task) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  {
    const sync::MutexLock lock(mutex_);
    if (!shutdown_) {
      queue_.push_back(std::move(task));
      task = nullptr;
    }
    // else: fall through and run inline below, outside the lock — the
    // workers are draining (or already joined), so handing them the task
    // could lose it; running it at the call site keeps exactly-once.
  }
  if (task) {
    task();
    return;
  }
  work_cv_.notify_one();
}

std::size_t ThreadPoolExecutor::queue_depth() const {
  const sync::MutexLock lock(mutex_);
  return queue_.size();
}

void ThreadPoolExecutor::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      sync::MutexLock lock(mutex_);
      while (!shutdown_ && queue_.empty()) work_cv_.wait(mutex_);
      // Drain-before-exit: shutdown only stops a worker once the queue is
      // empty, so every submitted task runs exactly once.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void TaskGroup::spawn(std::function<void()> task) {
  {
    const sync::MutexLock lock(mutex_);
    ++pending_;
  }
  executor_.submit([this, task = std::move(task)] {
    task();
    {
      const sync::MutexLock lock(mutex_);
      --pending_;
    }
    done_cv_.notify_all();
  });
}

void TaskGroup::wait() {
  sync::MutexLock lock(mutex_);
  while (pending_ != 0) done_cv_.wait(mutex_);
}

}  // namespace biot
