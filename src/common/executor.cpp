#include "common/executor.h"

#include <utility>

namespace biot {

ThreadPoolExecutor::ThreadPoolExecutor(unsigned threads) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPoolExecutor::~ThreadPoolExecutor() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPoolExecutor::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

std::size_t ThreadPoolExecutor::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPoolExecutor::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      // Drain-before-exit: shutdown only stops a worker once the queue is
      // empty, so every submitted task runs exactly once.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void TaskGroup::spawn(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
  }
  executor_.submit([this, task = std::move(task)] {
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --pending_;
    }
    done_cv_.notify_all();
  });
}

void TaskGroup::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
}

}  // namespace biot
