// Capability-annotated synchronization primitives — the ONLY place in src/
// allowed to name std::mutex / std::condition_variable (enforced by the
// biot-lint `raw-sync` rule; this header carries the justified allow()
// carve-outs).
//
// Two independent layers ride on the same wrappers:
//
// 1. Clang Thread Safety Analysis (compile time, every build where the
//    compiler is Clang; the `clang-thread-safety` CI job makes it -Werror).
//    `Mutex` is a CAPABILITY, `MutexLock` a SCOPED_CAPABILITY, and every
//    field guarded by a mutex is annotated GUARDED_BY(mutex_) at its
//    declaration, so "read without the lock" or "call without REQUIRES"
//    is a compile error on every translation unit — not just on the code
//    paths a TSan run happens to execute. On non-Clang compilers the
//    macros expand to nothing and the wrappers cost exactly what the raw
//    primitives cost.
//
// 2. Lock-rank deadlock checking (runtime, opt-in). Every Mutex is
//    constructed with a rank from the global order below; when checking is
//    enabled (BIOT_AUDIT=1, i.e. every sanitizer CI job, or
//    set_lock_rank_checking(true)) a thread acquiring a mutex whose rank is
//    not strictly greater than every rank it already holds aborts with both
//    ranks printed. Deadlock requires acquiring in conflicting orders;
//    a total acquisition order makes that impossible, and the checker
//    validates the order on real executions instead of trusting comments.
//
// Global lock-rank order (low = outer/first, high = inner/last; the full
// table with the nesting that motivates each edge lives in DESIGN.md §12):
//
//   kRankTaskGroup(10) < kRankExecutorQueue(20) < kRankMiner(30)
//                      < kRankMetrics(40) < kRankLog(50)
//
// kRankLog is the innermost capability in the system: any subsystem may
// emit a log line while holding its own lock (the metrics registry does,
// on kind-mismatch warnings), so nothing may be acquired under it.
#pragma once

#include <condition_variable>  // biot-lint: allow(raw-sync) the one wrapper layer
#include <cstdint>
#include <mutex>         // biot-lint: allow(raw-sync) the one wrapper layer
#include <shared_mutex>  // biot-lint: allow(raw-sync) the one wrapper layer

// ---- Clang Thread Safety Analysis attribute vocabulary ---------------------
// The canonical macro names from clang.llvm.org/docs/ThreadSafetyAnalysis —
// no-ops on every compiler that is not Clang.

#if defined(__clang__) && !defined(SWIG)
#define BIOT_TS_ATTR(x) __attribute__((x))
#else
#define BIOT_TS_ATTR(x)  // no-op outside Clang
#endif

#define CAPABILITY(x) BIOT_TS_ATTR(capability(x))
#define SCOPED_CAPABILITY BIOT_TS_ATTR(scoped_lockable)
#define GUARDED_BY(x) BIOT_TS_ATTR(guarded_by(x))
#define PT_GUARDED_BY(x) BIOT_TS_ATTR(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) BIOT_TS_ATTR(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) BIOT_TS_ATTR(acquired_after(__VA_ARGS__))
#define REQUIRES(...) BIOT_TS_ATTR(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  BIOT_TS_ATTR(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) BIOT_TS_ATTR(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) BIOT_TS_ATTR(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) BIOT_TS_ATTR(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) BIOT_TS_ATTR(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) BIOT_TS_ATTR(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) BIOT_TS_ATTR(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  BIOT_TS_ATTR(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) BIOT_TS_ATTR(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) BIOT_TS_ATTR(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) BIOT_TS_ATTR(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) BIOT_TS_ATTR(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS BIOT_TS_ATTR(no_thread_safety_analysis)

namespace biot::sync {

// ---- Lock-rank order -------------------------------------------------------

/// A mutex constructed without a rank opts out of order checking (fine for
/// purely local mutexes that never nest; every subsystem singleton below
/// carries a rank).
inline constexpr unsigned kNoRank = 0;

inline constexpr unsigned kRankTaskGroup = 10;      // common/executor.h
inline constexpr unsigned kRankExecutorQueue = 20;  // common/executor.h
inline constexpr unsigned kRankMiner = 30;          // consensus/pow.h
inline constexpr unsigned kRankMetrics = 40;        // obs/metrics.h
inline constexpr unsigned kRankLog = 50;            // common/log.cpp (inner)

/// Whether acquiring mutexes out of rank order aborts. Defaults to the
/// BIOT_AUDIT=1 environment toggle (the same opt-in the tangle invariant
/// auditor uses, so every sanitizer CI job validates lock ordering);
/// set_lock_rank_checking overrides it either way (tests use this to get a
/// deterministic abort regardless of environment).
bool lock_rank_checking();
void set_lock_rank_checking(bool enabled);

namespace internal {
/// Rank bookkeeping on the calling thread, shared by Mutex and SharedMutex.
/// `on_acquire` aborts (printing the held ranks and the offending rank) when
/// `rank` is ranked and not strictly greater than every rank already held.
void on_acquire(unsigned rank);
void on_release(unsigned rank);
}  // namespace internal

// ---- Mutex -----------------------------------------------------------------

/// Exclusive mutex: std::mutex plus (1) the CAPABILITY annotation Clang's
/// analysis keys on and (2) the optional lock-rank check. Lock via MutexLock
/// wherever possible; bare lock()/unlock() exist for the condvar handoff
/// patterns RAII cannot express.
class CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(unsigned rank = kNoRank) : rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
    internal::on_acquire(rank_);
    inner_.lock();
  }
  void unlock() RELEASE() {
    inner_.unlock();
    internal::on_release(rank_);
  }
  bool try_lock() TRY_ACQUIRE(true) {
    if (!inner_.try_lock()) return false;
    internal::on_acquire(rank_);
    return true;
  }

  /// Tells the analysis this thread holds the mutex when the proof cannot
  /// be expressed structurally (e.g. a callback invoked under the lock).
  void assert_held() const ASSERT_CAPABILITY(this) {}

  unsigned rank() const { return rank_; }

 private:
  friend class CondVar;  // waits on inner_ without re-running rank checks

  std::mutex inner_;  // biot-lint: allow(raw-sync) the one wrapper layer
  const unsigned rank_;
};

/// Shared (reader/writer) mutex with the same rank discipline. Writers go
/// through lock()/WriterMutexLock, readers through ReaderMutexLock.
class CAPABILITY("mutex") SharedMutex {
 public:
  explicit SharedMutex(unsigned rank = kNoRank) : rank_(rank) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() {
    internal::on_acquire(rank_);
    inner_.lock();
  }
  void unlock() RELEASE() {
    inner_.unlock();
    internal::on_release(rank_);
  }
  void lock_shared() ACQUIRE_SHARED() {
    internal::on_acquire(rank_);
    inner_.lock_shared();
  }
  void unlock_shared() RELEASE_SHARED() {
    inner_.unlock_shared();
    internal::on_release(rank_);
  }

  void assert_held() const ASSERT_CAPABILITY(this) {}

  unsigned rank() const { return rank_; }

 private:
  std::shared_mutex inner_;  // biot-lint: allow(raw-sync) the one wrapper layer
  const unsigned rank_;
};

// ---- RAII locks ------------------------------------------------------------

/// Scoped exclusive lock over Mutex. SCOPED_CAPABILITY means the analysis
/// tracks the capability from construction to destruction, so a guarded
/// field is provably accessible exactly within the block.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive (writer) lock over SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared (reader) lock over SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() RELEASE_SHARED() { mu_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// ---- CondVar ---------------------------------------------------------------

/// Condition variable bound to Mutex. wait() REQUIRES the mutex, which is
/// exactly the contract std::condition_variable leaves implicit — under the
/// analysis, waiting without holding the lock no longer compiles. The wait
/// releases and reacquires the underlying std::mutex internally; the rank
/// bookkeeping deliberately keeps the mutex on the held stack for the whole
/// wait, because on return the caller holds it again and a sleeping thread
/// acquires nothing in between.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// One wakeup. Callers loop on their predicate explicitly —
  /// `while (!ready_) cv_.wait(mutex_);` — which is the shape the analysis
  /// proves directly (a predicate-lambda overload cannot carry a REQUIRES
  /// the analysis can match to `mu`).
  void wait(Mutex& mu) REQUIRES(mu);

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  // biot-lint: allow(raw-sync) the one wrapper layer
  std::condition_variable cv_;
};

}  // namespace biot::sync
