// Byte-buffer utilities shared by every B-IoT module.
//
// `Bytes` is the canonical owning buffer type; `ByteView` the non-owning view.
// Helpers cover hex round-trips, constant-time comparison (for MAC checks) and
// XOR combination (used by cipher modes).
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace biot {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;
using MutByteView = std::span<std::uint8_t>;

/// Encodes `data` as lowercase hex.
std::string to_hex(ByteView data);

/// Decodes a hex string (upper or lower case). Throws std::invalid_argument on
/// malformed input (odd length or non-hex digit).
Bytes from_hex(std::string_view hex);

/// Copies a string's bytes into a Bytes buffer.
Bytes to_bytes(std::string_view s);

/// Interprets a byte buffer as text (caller asserts it is valid text).
std::string to_string(ByteView data);

/// Constant-time equality; safe for comparing MACs and key material.
bool ct_equal(ByteView a, ByteView b) noexcept;

/// XORs `src` into `dst` (dst[i] ^= src[i]); sizes must match.
void xor_into(MutByteView dst, ByteView src);

/// Concatenates buffers.
Bytes concat(std::initializer_list<ByteView> parts);

/// Fixed-size byte array with hex/equality helpers — used for hashes and keys.
template <std::size_t N>
struct FixedBytes {
  std::array<std::uint8_t, N> data{};

  static constexpr std::size_t size() { return N; }
  const std::uint8_t* begin() const { return data.data(); }
  const std::uint8_t* end() const { return data.data() + N; }
  std::uint8_t* begin() { return data.data(); }
  std::uint8_t* end() { return data.data() + N; }
  std::uint8_t operator[](std::size_t i) const { return data[i]; }
  std::uint8_t& operator[](std::size_t i) { return data[i]; }

  ByteView view() const { return ByteView{data.data(), N}; }
  Bytes bytes() const { return Bytes(data.begin(), data.end()); }
  std::string hex() const { return to_hex(view()); }

  friend bool operator==(const FixedBytes& a, const FixedBytes& b) = default;
  friend auto operator<=>(const FixedBytes& a, const FixedBytes& b) = default;

  static FixedBytes from_view(ByteView v) {
    FixedBytes out;
    if (v.size() != N) throw std::invalid_argument("FixedBytes: size mismatch");
    std::copy(v.begin(), v.end(), out.data.begin());
    return out;
  }
  static FixedBytes parse_hex(std::string_view h) { return from_view(from_hex(h)); }
};

template <std::size_t N>
struct FixedBytesHash {
  std::size_t operator()(const FixedBytes<N>& v) const noexcept {
    // Buffers here are cryptographic hashes/keys: the first 8 bytes are already
    // uniformly distributed, so they serve directly as the table hash.
    std::uint64_t h = 0;
    for (std::size_t i = 0; i < 8 && i < N; ++i) h = (h << 8) | v.data[i];
    return static_cast<std::size_t>(h);
  }
};

}  // namespace biot
