#include "common/sync.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace biot::sync {

namespace {

// -1 = follow the BIOT_AUDIT environment toggle, 0/1 = forced by
// set_lock_rank_checking. One relaxed load per lock keeps the disabled-path
// cost negligible on hot paths.
std::atomic<int> g_rank_checking{-1};

bool env_rank_checking() {
  static const bool enabled = [] {
    const char* env = std::getenv("BIOT_AUDIT");
    return env != nullptr && env[0] == '1';
  }();
  return enabled;
}

// Per-thread stack of ranked mutexes currently held, in acquisition order.
// Unranked (kNoRank) mutexes are never pushed: they opt out of ordering.
thread_local std::vector<unsigned> t_held_ranks;

}  // namespace

bool lock_rank_checking() {
  const int forced = g_rank_checking.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  return env_rank_checking();
}

void set_lock_rank_checking(bool enabled) {
  g_rank_checking.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

namespace internal {

void on_acquire(unsigned rank) {
  if (rank == kNoRank || !lock_rank_checking()) return;
  for (const unsigned held : t_held_ranks) {
    if (held >= rank) {
      // Deliberately not the logger: the logger takes kRankLog itself, and
      // aborting mid-diagnosis must not depend on the subsystem under test.
      std::fprintf(stderr,
                   "biot-sync: lock rank violation: acquiring rank %u while "
                   "holding rank %u (held ranks, outermost first:",
                   rank, held);
      for (const unsigned r : t_held_ranks) std::fprintf(stderr, " %u", r);
      std::fprintf(stderr,
                   ") — the global acquisition order in DESIGN.md §12 "
                   "requires strictly increasing ranks\n");
      std::abort();
    }
  }
  t_held_ranks.push_back(rank);
}

void on_release(unsigned rank) {
  if (rank == kNoRank || !lock_rank_checking()) return;
  // Released in LIFO order virtually always; search from the back so an
  // out-of-order unlock (legal, if unusual) still unregisters correctly.
  for (auto it = t_held_ranks.rbegin(); it != t_held_ranks.rend(); ++it) {
    if (*it == rank) {
      t_held_ranks.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace internal

void CondVar::wait(Mutex& mu) {
  // Adopt the already-held std::mutex, sleep, then release the unique_lock
  // WITHOUT unlocking so the Mutex wrapper still owns it on return — the
  // REQUIRES(mu) contract holds across the call.
  // biot-lint: allow(raw-sync) the one wrapper layer
  std::unique_lock<std::mutex> native(mu.inner_, std::adopt_lock);
  cv_.wait(native);
  native.release();
}

}  // namespace biot::sync
