// Binary serialization: little-endian fixed-width integers, length-prefixed
// byte strings. Transactions, blocks and protocol messages all encode through
// this codec so hashes are computed over a canonical wire form.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace biot {

/// Appends primitives to an owned buffer in canonical wire order.
class Writer {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  /// Length-prefixed (u32) byte string.
  void blob(ByteView data);
  /// Length-prefixed (u32) UTF-8 string.
  void str(std::string_view s);
  /// Raw bytes, no length prefix (fixed-size fields like hashes/keys).
  void raw(ByteView data);

  const Bytes& bytes() const noexcept { return buf_; }
  Bytes take() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Reads primitives back; every accessor returns an error Status on underflow
/// rather than throwing, since decoding attacker-controlled bytes is an
/// expected failure path.
class Reader {
 public:
  explicit Reader(ByteView data) : data_(data) {}

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16();
  Result<std::uint32_t> u32();
  Result<std::uint64_t> u64();
  Result<std::int64_t> i64();
  Result<double> f64();
  Result<Bytes> blob();
  Result<std::string> str();
  /// Reads exactly n raw bytes.
  Result<Bytes> raw(std::size_t n);

  bool at_end() const noexcept { return pos_ == data_.size(); }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  [[nodiscard]] Status need(std::size_t n);
  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace biot
