// Lightweight Status/Result types for expected, recoverable outcomes
// (invalid transaction, unauthorized device, failed decrypt, ...).
// Programming errors and broken invariants throw instead.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace biot {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kUnauthorized,
  kConflict,        // double-spend / sequence conflict
  kVerifyFailed,    // signature or MAC mismatch
  kDecryptFailed,
  kReplayDetected,
  kLazyBehaviour,   // stale-parent / lazy-tip violation
  kPowInvalid,
  kRejected,        // generic policy rejection
  kTimeout,
  kInternal,
};

/// Human-readable name of an error code ("unauthorized", "conflict", ...).
std::string_view error_code_name(ErrorCode code) noexcept;

/// A success-or-error outcome without a payload. Marked [[nodiscard]]: a
/// dropped Status is exactly how a kConflict/kUnauthorized rejection turns
/// into a silent accept, so every producer must be checked (or explicitly
/// discarded with a void cast naming why).
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status{}; }
  static Status error(ErrorCode code, std::string message) {
    return Status{code, std::move(message)};
  }

  bool is_ok() const noexcept { return code_ == ErrorCode::kOk; }
  explicit operator bool() const noexcept { return is_ok(); }
  ErrorCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// Formats "code: message" for logs and test failure output.
  std::string to_string() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// A value-or-error outcome. Accessing value() on an error throws.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    if (std::get<Status>(payload_).is_ok())
      throw std::logic_error("Result: error constructor given OK status");
  }

  bool is_ok() const noexcept { return std::holds_alternative<T>(payload_); }
  explicit operator bool() const noexcept { return is_ok(); }

  const T& value() const& {
    require_ok();
    return std::get<T>(payload_);
  }
  T& value() & {
    require_ok();
    return std::get<T>(payload_);
  }
  T&& take() && {
    require_ok();
    return std::get<T>(std::move(payload_));
  }

  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(payload_);
  }
  ErrorCode code() const noexcept {
    return is_ok() ? ErrorCode::kOk : std::get<Status>(payload_).code();
  }

 private:
  void require_ok() const {
    if (!is_ok())
      throw std::runtime_error("Result: value() on error: " +
                               std::get<Status>(payload_).to_string());
  }
  std::variant<T, Status> payload_;
};

}  // namespace biot
