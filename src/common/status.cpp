#include "common/status.h"

namespace biot {

std::string_view error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kUnauthorized: return "unauthorized";
    case ErrorCode::kConflict: return "conflict";
    case ErrorCode::kVerifyFailed: return "verify_failed";
    case ErrorCode::kDecryptFailed: return "decrypt_failed";
    case ErrorCode::kReplayDetected: return "replay_detected";
    case ErrorCode::kLazyBehaviour: return "lazy_behaviour";
    case ErrorCode::kPowInvalid: return "pow_invalid";
    case ErrorCode::kRejected: return "rejected";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string out{error_code_name(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace biot
