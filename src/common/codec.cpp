#include "common/codec.h"

#include <bit>
#include <cstring>

namespace biot {

namespace {
template <typename T>
void append_le(Bytes& buf, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i)
    buf.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

template <typename T>
T read_le(ByteView data, std::size_t pos) {
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i)
    v |= static_cast<T>(data[pos + i]) << (8 * i);
  return v;
}
}  // namespace

void Writer::u8(std::uint8_t v) { buf_.push_back(v); }
void Writer::u16(std::uint16_t v) { append_le(buf_, v); }
void Writer::u32(std::uint32_t v) { append_le(buf_, v); }
void Writer::u64(std::uint64_t v) { append_le(buf_, v); }
void Writer::i64(std::int64_t v) { append_le(buf_, static_cast<std::uint64_t>(v)); }

void Writer::f64(double v) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  append_le(buf_, std::bit_cast<std::uint64_t>(v));
}

void Writer::blob(ByteView data) {
  u32(static_cast<std::uint32_t>(data.size()));
  raw(data);
}

void Writer::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::raw(ByteView data) { buf_.insert(buf_.end(), data.begin(), data.end()); }

Status Reader::need(std::size_t n) {
  if (remaining() < n)
    return Status::error(ErrorCode::kInvalidArgument, "codec: truncated input");
  return Status::ok();
}

Result<std::uint8_t> Reader::u8() {
  if (auto s = need(1); !s) return s;
  return data_[pos_++];
}

Result<std::uint16_t> Reader::u16() {
  if (auto s = need(2); !s) return s;
  auto v = read_le<std::uint16_t>(data_, pos_);
  pos_ += 2;
  return v;
}

Result<std::uint32_t> Reader::u32() {
  if (auto s = need(4); !s) return s;
  auto v = read_le<std::uint32_t>(data_, pos_);
  pos_ += 4;
  return v;
}

Result<std::uint64_t> Reader::u64() {
  if (auto s = need(8); !s) return s;
  auto v = read_le<std::uint64_t>(data_, pos_);
  pos_ += 8;
  return v;
}

Result<std::int64_t> Reader::i64() {
  auto v = u64();
  if (!v) return v.status();
  return static_cast<std::int64_t>(v.value());
}

Result<double> Reader::f64() {
  auto v = u64();
  if (!v) return v.status();
  return std::bit_cast<double>(v.value());
}

Result<Bytes> Reader::blob() {
  auto len = u32();
  if (!len) return len.status();
  return raw(len.value());
}

Result<std::string> Reader::str() {
  auto b = blob();
  if (!b) return b.status();
  return std::string(b.value().begin(), b.value().end());
}

Result<Bytes> Reader::raw(std::size_t n) {
  if (auto s = need(n); !s) return s;
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace biot
