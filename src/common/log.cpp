#include "common/log.h"

#include <atomic>
#include <iostream>

#include "common/sync.h"

namespace biot {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
// kRankLog is the innermost rank in the system: any subsystem may log while
// holding its own lock (the metrics registry does), so the sink mutex must
// order after everything else. See DESIGN.md §12.
sync::Mutex g_mutex{sync::kRankLog};

std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, std::string_view component, std::string_view message) {
  if (level < log_level()) return;
  const sync::MutexLock lock(g_mutex);
  std::cerr << '[' << level_name(level) << "] " << component << ": " << message << '\n';
}

Logger::Line::~Line() {
  if (level_ >= log_level()) log_line(level_, component_, stream_.str());
}

}  // namespace biot
