// Task execution backends for the concurrent admission core (and any future
// fan-out work). Two backends share one interface:
//
//   InlineExecutor     runs every task at the submit() call site, in order.
//                      Zero threads, zero queues — the deterministic twin
//                      used by the simulator and by equivalence tests (the
//                      ROADMAP `_brute_force` pattern applied to
//                      concurrency: the concurrent pipeline run on an
//                      InlineExecutor must be byte-identical to the serial
//                      reference).
//
//   ThreadPoolExecutor fixed worker pool draining one MPMC queue under a
//                      capability-annotated mutex + condvar (the action-
//                      queue shape: producers enqueue closures, any idle
//                      worker picks the next). Workers live until
//                      shutdown(); shutdown drains the queue before joining
//                      and tasks submitted after it run inline at the call
//                      site, so no submitted task is ever lost.
//
// TaskGroup layers structured fan-out/join on either backend: spawn() hands
// tasks to the executor, wait() blocks until every spawned task finished.
// The join is a full happens-before edge (mutex + condvar), so results
// written by worker threads are safely readable after wait() returns.
//
// Tasks must not throw: an exception escaping a worker-thread closure has no
// caller to land in, so it would terminate the process either way. Keep
// failure signalling in the task's captured state.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace biot {

/// Where to run a closure. Implementations may run it synchronously at the
/// call site (InlineExecutor) or hand it to a worker thread.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Schedules `task` for execution exactly once. May run it before
  /// returning (inline backend).
  virtual void submit(std::function<void()> task) = 0;

  /// Number of tasks this executor can run at the same time (1 = serial).
  /// Callers size their fan-out chunks off this.
  virtual std::size_t concurrency() const = 0;

  /// Tasks submitted but not yet picked up by a worker (0 for the inline
  /// backend, which never queues). A sampling gauge, not a synchronization
  /// primitive.
  virtual std::size_t queue_depth() const { return 0; }

  /// Total tasks ever handed to submit(). Monotonic; like queue_depth a
  /// sampling counter (PR 8's batch metrics read both mid-fan-out, which is
  /// why they are a locked read and an atomic rather than unguarded fields).
  virtual std::uint64_t submitted() const { return 0; }
};

/// Runs every task synchronously at the submit() call site — deterministic
/// by construction and the sim/test default.
class InlineExecutor final : public Executor {
 public:
  void submit(std::function<void()> task) override {
    submitted_.fetch_add(1, std::memory_order_relaxed);
    task();
  }
  std::size_t concurrency() const override { return 1; }
  std::uint64_t submitted() const override {
    return submitted_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> submitted_{0};
};

/// Fixed pool of worker threads draining a shared FIFO queue.
class ThreadPoolExecutor final : public Executor {
 public:
  /// `threads` workers (0 = hardware concurrency, minimum 1).
  explicit ThreadPoolExecutor(unsigned threads);
  ~ThreadPoolExecutor() override;

  ThreadPoolExecutor(const ThreadPoolExecutor&) = delete;
  ThreadPoolExecutor& operator=(const ThreadPoolExecutor&) = delete;

  void submit(std::function<void()> task) override;
  std::size_t concurrency() const override { return workers_.size(); }
  std::size_t queue_depth() const override;
  std::uint64_t submitted() const override {
    return submitted_.load(std::memory_order_relaxed);
  }

  /// Stops the pool: already-queued tasks still run (drain-before-join),
  /// workers are joined, and any task submitted from here on runs inline at
  /// its submit() call site. Idempotent from the owning thread; the
  /// destructor calls it. Racing submit() against shutdown() is safe — the
  /// exactly-once guarantee holds either way — racing two shutdown() calls
  /// is not (same rule as racing the destructor).
  void shutdown();

 private:
  void worker_loop();

  mutable sync::Mutex mutex_{sync::kRankExecutorQueue};
  sync::CondVar work_cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
  bool shutdown_ GUARDED_BY(mutex_) = false;
  std::atomic<std::uint64_t> submitted_{0};
  // biot-lint: allow(guarded-field) written in ctor, joined in shutdown() only
  std::vector<std::thread> workers_;
};

/// Structured fan-out/join over any Executor. Destruction waits, so a group
/// cannot outlive the state its tasks reference.
class TaskGroup {
 public:
  explicit TaskGroup(Executor& executor) : executor_(executor) {}
  ~TaskGroup() { wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules `task` on the executor and counts it toward wait().
  void spawn(std::function<void()> task);

  /// Blocks until every spawned task has finished. Establishes
  /// happens-before with each task's completion, so their writes are
  /// visible to the caller afterwards.
  void wait();

 private:
  Executor& executor_;
  sync::Mutex mutex_{sync::kRankTaskGroup};
  sync::CondVar done_cv_;
  std::size_t pending_ GUARDED_BY(mutex_) = 0;
};

}  // namespace biot
