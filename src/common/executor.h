// Task execution backends for the concurrent admission core (and any future
// fan-out work). Two backends share one interface:
//
//   InlineExecutor     runs every task at the submit() call site, in order.
//                      Zero threads, zero queues — the deterministic twin
//                      used by the simulator and by equivalence tests (the
//                      ROADMAP `_brute_force` pattern applied to
//                      concurrency: the concurrent pipeline run on an
//                      InlineExecutor must be byte-identical to the serial
//                      reference).
//
//   ThreadPoolExecutor fixed worker pool draining one MPMC queue under a
//                      mutex + condvar (the action-queue shape: producers
//                      enqueue closures, any idle worker picks the next).
//                      Workers live for the executor's lifetime; shutdown
//                      drains the queue before joining so no submitted task
//                      is lost.
//
// TaskGroup layers structured fan-out/join on either backend: spawn() hands
// tasks to the executor, wait() blocks until every spawned task finished.
// The join is a full happens-before edge (mutex + condvar), so results
// written by worker threads are safely readable after wait() returns.
//
// Tasks must not throw: an exception escaping a worker-thread closure has no
// caller to land in, so it would terminate the process either way. Keep
// failure signalling in the task's captured state.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace biot {

/// Where to run a closure. Implementations may run it synchronously at the
/// call site (InlineExecutor) or hand it to a worker thread.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Schedules `task` for execution exactly once. May run it before
  /// returning (inline backend).
  virtual void submit(std::function<void()> task) = 0;

  /// Number of tasks this executor can run at the same time (1 = serial).
  /// Callers size their fan-out chunks off this.
  virtual std::size_t concurrency() const = 0;

  /// Tasks submitted but not yet picked up by a worker (0 for the inline
  /// backend, which never queues). A sampling gauge, not a synchronization
  /// primitive.
  virtual std::size_t queue_depth() const { return 0; }
};

/// Runs every task synchronously at the submit() call site — deterministic
/// by construction and the sim/test default.
class InlineExecutor final : public Executor {
 public:
  void submit(std::function<void()> task) override { task(); }
  std::size_t concurrency() const override { return 1; }
};

/// Fixed pool of worker threads draining a shared FIFO queue.
class ThreadPoolExecutor final : public Executor {
 public:
  /// `threads` workers (0 = hardware concurrency, minimum 1).
  explicit ThreadPoolExecutor(unsigned threads);
  ~ThreadPoolExecutor() override;

  ThreadPoolExecutor(const ThreadPoolExecutor&) = delete;
  ThreadPoolExecutor& operator=(const ThreadPoolExecutor&) = delete;

  void submit(std::function<void()> task) override;
  std::size_t concurrency() const override { return workers_.size(); }
  std::size_t queue_depth() const override;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Structured fan-out/join over any Executor. Destruction waits, so a group
/// cannot outlive the state its tasks reference.
class TaskGroup {
 public:
  explicit TaskGroup(Executor& executor) : executor_(executor) {}
  ~TaskGroup() { wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules `task` on the executor and counts it toward wait().
  void spawn(std::function<void()> task);

  /// Blocks until every spawned task has finished. Establishes
  /// happens-before with each task's completion, so their writes are
  /// visible to the caller afterwards.
  void wait();

 private:
  Executor& executor_;
  std::mutex mutex_;
  std::condition_variable done_cv_;
  std::size_t pending_ = 0;
};

}  // namespace biot
