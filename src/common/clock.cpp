#include "common/clock.h"

#include <chrono>
#include <stdexcept>

namespace biot {

TimePoint WallClock::now() const {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(t).count();
}

void SimClock::advance_to(TimePoint t) {
  if (t < now_) throw std::logic_error("SimClock: time moved backwards");
  now_ = t;
}

}  // namespace biot
