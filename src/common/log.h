// Minimal leveled logger. Examples turn it up; tests/benches leave it quiet.
#pragma once

#include <sstream>
#include <string>

namespace biot {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr: "[level] component: message".
void log_line(LogLevel level, std::string_view component, std::string_view message);

/// Stream-style helper: Logger("gateway").info() << "accepted tx " << id;
class Logger {
 public:
  explicit Logger(std::string component) : component_(std::move(component)) {}

  class Line {
   public:
    Line(LogLevel level, std::string_view component) : level_(level), component_(component) {}
    Line(const Line&) = delete;
    Line& operator=(const Line&) = delete;
    ~Line();

    template <typename T>
    Line& operator<<(const T& v) {
      if (level_ >= log_level()) stream_ << v;
      return *this;
    }

   private:
    LogLevel level_;
    std::string_view component_;
    std::ostringstream stream_;
  };

  Line debug() const { return Line(LogLevel::kDebug, component_); }
  Line info() const { return Line(LogLevel::kInfo, component_); }
  Line warn() const { return Line(LogLevel::kWarn, component_); }
  Line error() const { return Line(LogLevel::kError, component_); }

 private:
  std::string component_;
};

}  // namespace biot
