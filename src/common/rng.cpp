#include "common/rng.h"

#include <cmath>

namespace biot {

double Rng::exponential(double mean) noexcept {
  // Inverse-CDF; guard the log argument away from 0.
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::gaussian(double mean, double stddev) noexcept {
  if (have_spare_) {
    have_spare_ = false;
    return mean + stddev * spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * m;
  have_spare_ = true;
  return mean + stddev * u * m;
}

std::uint64_t Rng::geometric(double p) noexcept {
  if (p >= 1.0) return 1;
  if (p <= 0.0) return UINT64_MAX;
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  const double k = std::ceil(std::log(u) / std::log1p(-p));
  if (k >= 9.22e18) return UINT64_MAX;
  return k < 1.0 ? 1 : static_cast<std::uint64_t>(k);
}

}  // namespace biot
