// Clock abstraction. Credit dynamics (Eqns 3-4 of the paper) are functions of
// wall time, so every component reads time through this interface; the
// discrete-event simulator injects a SimClock and tests get full determinism.
#pragma once

#include <cstdint>

namespace biot {

/// Seconds since an arbitrary epoch. Double precision keeps sub-millisecond
/// resolution over simulation horizons of years.
using TimePoint = double;
using Duration = double;

class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimePoint now() const = 0;
};

/// Real wall time (steady, monotonic).
class WallClock final : public Clock {
 public:
  TimePoint now() const override;
};

/// Manually-advanced clock owned by the event scheduler.
class SimClock final : public Clock {
 public:
  TimePoint now() const override { return now_; }
  void advance_to(TimePoint t);
  void advance_by(Duration d) { advance_to(now_ + d); }

 private:
  TimePoint now_ = 0.0;
};

}  // namespace biot
