// Observability subsystem: a unified registry of named counters, gauges and
// fixed-bucket histograms.
//
// Design (the YTsaurus profiling/monitoring split, scaled to this repo):
// instruments live WHERE THE DATA IS — components keep owning their stat
// structs (node::GatewayStats, sim::NetworkStats, ...) whose fields are now
// obs::Counter instead of raw integers — and the MetricsRegistry is the
// NAMING AND EXPORT layer: components attach their instruments under
// hierarchical dot-separated scopes ("gateway.g1.admission.accepted"), and
// one snapshot/export call renders the whole fleet. The registry can also
// own instruments outright (get-or-create by name) for callers without a
// natural home struct.
//
// Instruments are thread-safe (relaxed atomics — counters are monotonic and
// cross-thread ordering carries no meaning), cheap enough for hot paths
// (counter add: one relaxed fetch_add; histogram observe: a bucket scan of
// ~30 doubles plus three relaxed RMWs), and copyable with value-snapshot
// semantics so existing `stats_ = GatewayStats{}` reset idioms keep working.
//
// Histograms are fixed-bucket: p50/p90/p99 come from bucket counts via
// within-bucket linear interpolation, so no samples are ever stored and the
// memory cost is O(buckets) regardless of observation count. Two histograms
// with identical bounds merge by adding bucket counts — shard-local
// histograms fold into a fleet-wide one losslessly (same quantile estimate
// as observing every sample into one histogram).
//
// Naming convention: `<component>.<instance>.<subsystem>.<metric>`, with a
// unit suffix on timed metrics (`_us`, `_ms`, `_s`). See DESIGN.md
// section 9 for the full convention and the overhead budget.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"

namespace biot::obs {

/// Monotonic event counter. Implicitly converts to its value so it is a
/// drop-in replacement for the raw std::uint64_t fields the ad-hoc stat
/// structs used to hold (`++stats.accepted`, `EXPECT_EQ(stats.accepted, 3u)`
/// and `static_cast<unsigned long long>(stats.accepted)` all still compile).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter& other) : value_(other.value()) {}
  Counter& operator=(const Counter& other) {
    value_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }

  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  Counter& operator++() {
    add(1);
    return *this;
  }
  Counter& operator+=(std::uint64_t n) {
    add(n);
    return *this;
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  operator std::uint64_t() const { return value(); }  // NOLINT(google-explicit-constructor)

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, tangle size, credit).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge& other) : value_(other.value()) {}
  Gauge& operator=(const Gauge& other) {
    value_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }

  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  operator double() const { return value(); }  // NOLINT(google-explicit-constructor)

 private:
  std::atomic<double> value_{0.0};
};

/// Bucket layout of a Histogram: strictly increasing upper bounds, plus an
/// implicit final +inf bucket. Quantile resolution is the bucket width at
/// the quantile's rank, so choose bounds that bracket the expected range.
struct HistogramSpec {
  std::vector<double> bounds;

  /// `count` bounds: first, first*factor, first*factor^2, ... — constant
  /// RELATIVE resolution, the right shape for latencies spanning decades.
  static HistogramSpec exponential(double first, double factor,
                                   std::size_t count);
  /// `count` bounds: first, first+width, first+2*width, ...
  static HistogramSpec linear(double first, double width, std::size_t count);

  /// Default for timers: 1 µs .. ~137 s in powers of two (28 buckets),
  /// expressed in seconds. Covers every latency this repo measures.
  static const HistogramSpec& timer_seconds();
  /// Default for dimensionless sizes/lengths: 1 .. ~2^24 in powers of two.
  static const HistogramSpec& size();
};

/// Fixed-bucket histogram: O(buckets) memory, quantiles without samples.
class Histogram {
 public:
  explicit Histogram(HistogramSpec spec = HistogramSpec::timer_seconds());
  Histogram(const Histogram& other);
  Histogram& operator=(const Histogram& other);

  void observe(double v);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  // 0 when empty
  double max() const;  // 0 when empty
  double mean() const;

  /// q in [0,1]. Estimated by locating the bucket holding the rank and
  /// linearly interpolating within its bounds, clamped to [min, max] so the
  /// estimate never leaves the observed range. 0 when empty.
  double quantile(double q) const;

  /// Folds `other`'s observations into this histogram. Returns false (and
  /// merges nothing) when the bucket bounds differ — merging across layouts
  /// would silently misattribute ranks.
  bool merge(const Histogram& other);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Observations in bucket i (i == bounds().size() is the overflow bucket).
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  void copy_from(const Histogram& other);

  std::vector<double> bounds_;
  // bounds_.size() + 1 buckets; the last catches v > bounds_.back().
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // Infinity sentinels make the lock-free CAS min/max correct for the very
  // first observation; min()/max() report 0 while empty.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

enum class MetricKind : std::uint8_t { kCounter = 0, kGauge, kHistogram };

std::string_view metric_kind_name(MetricKind kind) noexcept;

/// Point-in-time value of one named metric (see MetricsRegistry::snapshot).
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;        // counter / gauge value; histogram mean
  std::uint64_t count = 0;   // histogram observation count
  double sum = 0.0, min = 0.0, max = 0.0;  // histogram only
  double p50 = 0.0, p90 = 0.0, p99 = 0.0;  // histogram only
};

struct RegistrySnapshot {
  std::vector<MetricSnapshot> metrics;  // sorted by name
};

class Scope;

/// Get-or-create registry of named instruments plus an attachment table for
/// component-owned ones. Attached instruments are referenced, not copied:
/// the component must outlive the registry or detach_prefix first (the
/// SmartFactory declares its registry before every component for exactly
/// this reason). Thread-safe; instrument references returned by
/// counter()/gauge()/histogram() are stable for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Owned instruments, created on first use. Asking for an existing name
  /// with a different kind is a naming bug: it logs a warning and returns a
  /// process-wide dummy instrument so the caller cannot corrupt the real one.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(
      const std::string& name,
      const HistogramSpec& spec = HistogramSpec::timer_seconds());

  /// Registers an externally-owned instrument under `name` (re-attaching the
  /// same name replaces the previous pointer — a restarted component simply
  /// re-binds).
  void attach(const std::string& name, const Counter* counter);
  void attach(const std::string& name, const Gauge* gauge);
  void attach(const std::string& name, const Histogram* histogram);

  /// Drops every attached instrument whose name is `prefix` or starts with
  /// `prefix` + '.'. Owned instruments are never detached.
  void detach_prefix(const std::string& prefix);

  /// Handle that prefixes every name with `prefix` + '.'.
  Scope scope(std::string prefix);

  std::size_t size() const;

  RegistrySnapshot snapshot() const;

 private:
  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    // Exactly one of the owned pointers, or exactly one external pointer.
    std::unique_ptr<Counter> owned_counter;
    std::unique_ptr<Gauge> owned_gauge;
    std::unique_ptr<Histogram> owned_histogram;
    const Counter* ext_counter = nullptr;
    const Gauge* ext_gauge = nullptr;
    const Histogram* ext_histogram = nullptr;
    bool external() const { return ext_counter || ext_gauge || ext_histogram; }
  };

  Entry* find_or_warn(const std::string& name, MetricKind kind)
      REQUIRES(mutex_);

  mutable sync::Mutex mutex_{sync::kRankMetrics};
  // Ordered => sorted snapshots. Guarded: instrument lookup, attach/detach
  // and snapshot all contend from gateway threads and the obs exporter.
  std::map<std::string, Entry> entries_ GUARDED_BY(mutex_);
};

/// Lightweight name-prefixing view of a registry. Copyable; scopes nest:
/// registry.scope("gateway").scope("g1").counter("accepted") names
/// "gateway.g1.accepted".
class Scope {
 public:
  Scope(MetricsRegistry& registry, std::string prefix)
      : registry_(&registry), prefix_(std::move(prefix)) {}

  Scope scope(const std::string& sub) const {
    return Scope(*registry_, qualify(sub));
  }

  Counter& counter(const std::string& name) const {
    return registry_->counter(qualify(name));
  }
  Gauge& gauge(const std::string& name) const {
    return registry_->gauge(qualify(name));
  }
  Histogram& histogram(
      const std::string& name,
      const HistogramSpec& spec = HistogramSpec::timer_seconds()) const {
    return registry_->histogram(qualify(name), spec);
  }

  void attach(const std::string& name, const Counter* counter) const {
    registry_->attach(qualify(name), counter);
  }
  void attach(const std::string& name, const Gauge* gauge) const {
    registry_->attach(qualify(name), gauge);
  }
  void attach(const std::string& name, const Histogram* histogram) const {
    registry_->attach(qualify(name), histogram);
  }

  void detach_all() const { registry_->detach_prefix(prefix_); }

  const std::string& prefix() const { return prefix_; }
  MetricsRegistry& registry() const { return *registry_; }

 private:
  std::string qualify(const std::string& name) const {
    return prefix_.empty() ? name : prefix_ + "." + name;
  }

  MetricsRegistry* registry_;
  std::string prefix_;
};

}  // namespace biot::obs
