// Renders a RegistrySnapshot as human-readable text or as the
// "biot-metrics-v1" JSON document consumed by biot_simulate --metrics-out,
// biot_inspect --metrics and tools/bench_diff.py. The JSON layout is flat:
//
//   {
//     "schema": "biot-metrics-v1",
//     "metrics": {
//       "gateway.g0.admission.accepted": {"kind": "counter", "value": 412},
//       "gateway.g0.pow.grind_wall_s":   {"kind": "histogram", "count": 412,
//          "sum": 1.9, "min": ..., "max": ..., "mean": ...,
//          "p50": ..., "p90": ..., "p99": ...},
//       ...
//     }
//   }
#pragma once

#include <map>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace biot::obs {

/// One aligned line per metric; histograms render count/mean/p50/p90/p99.
std::string to_text(const RegistrySnapshot& snapshot);

/// biot-metrics-v1 JSON (see header comment). Deterministic: metrics appear
/// in snapshot order (sorted by name), numbers via %.17g.
std::string to_json(const RegistrySnapshot& snapshot);

/// Serializes to_json(snapshot) to `path`.
Status write_json(const RegistrySnapshot& snapshot, const std::string& path);

/// Minimal reader for the exporters' own output (round-trip tests and
/// bench_diff-style tooling): flattens every numeric field of a
/// biot-metrics-v1 document to "metric.name/field" -> value. Not a general
/// JSON parser — it understands exactly what to_json emits.
Result<std::map<std::string, double>> parse_flat_json(const std::string& json);

}  // namespace biot::obs
