// Small sample-statistics helpers shared by benches, the bench harness and
// EXPERIMENTS tables. Moved here from factory/metrics.h when the obs
// subsystem landed; factory code and benches include this directly.
#pragma once

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace biot::obs {

inline double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

/// Sample (n-1) standard deviation; 0 for fewer than two samples.
inline double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

/// p in [0, 100]; linear interpolation between closest ranks on a sorted
/// copy (the "exclusive" textbook method: p maps to rank p/100 * (n-1), and
/// fractional ranks blend the two neighbouring order statistics). Exact
/// sample statistics — contrast with Histogram::quantile, which estimates
/// from bucket counts without storing samples.
inline double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace biot::obs
