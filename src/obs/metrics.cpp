#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace biot::obs {

namespace {
Logger logger("obs");

/// Relaxed fetch-min/fetch-max over an atomic double via CAS. The first
/// observation always wins against the empty sentinel handled by the caller.
void atomic_min(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_add(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

// ---- HistogramSpec ---------------------------------------------------------

HistogramSpec HistogramSpec::exponential(double first, double factor,
                                         std::size_t count) {
  HistogramSpec spec;
  spec.bounds.reserve(count);
  double bound = first;
  for (std::size_t i = 0; i < count; ++i) {
    spec.bounds.push_back(bound);
    bound *= factor;
  }
  return spec;
}

HistogramSpec HistogramSpec::linear(double first, double width,
                                    std::size_t count) {
  HistogramSpec spec;
  spec.bounds.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    spec.bounds.push_back(first + width * static_cast<double>(i));
  return spec;
}

const HistogramSpec& HistogramSpec::timer_seconds() {
  static const HistogramSpec spec = exponential(1e-6, 2.0, 28);
  return spec;
}

const HistogramSpec& HistogramSpec::size() {
  static const HistogramSpec spec = exponential(1.0, 2.0, 24);
  return spec;
}

// ---- Histogram -------------------------------------------------------------

Histogram::Histogram(HistogramSpec spec)
    : bounds_(std::move(spec.bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
}

Histogram::Histogram(const Histogram& other)
    : bounds_(other.bounds_),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  copy_from(other);
}

Histogram& Histogram::operator=(const Histogram& other) {
  if (this == &other) return *this;
  if (bounds_ != other.bounds_) {
    bounds_ = other.bounds_;
    buckets_.reset(new std::atomic<std::uint64_t>[bounds_.size() + 1]);
  }
  copy_from(other);
  return *this;
}

void Histogram::copy_from(const Histogram& other) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(other.buckets_[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  count_.store(other.count(), std::memory_order_relaxed);
  sum_.store(other.sum(), std::memory_order_relaxed);
  min_.store(other.min_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
  max_.store(other.max_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
}

void Histogram::observe(double v) {
  if (!std::isfinite(v)) return;  // a NaN would poison sum and quantiles
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  // The ±infinity sentinels mean the very first observation wins both CAS
  // races; no seeding branch is needed.
  atomic_min(min_, v);
  atomic_max(max_, v);
  count_.fetch_add(1, std::memory_order_relaxed);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const auto n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::quantile(double q) const {
  const auto n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank in [0, n-1], nearest-rank within the cumulative bucket counts,
  // then linear interpolation across the winning bucket's value range.
  const double rank = q * static_cast<double>(n - 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const auto in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (rank < static_cast<double>(seen + in_bucket)) {
      // Bucket i spans (lower, upper]; the overflow bucket is capped by the
      // observed max, the first by the observed min.
      const double lower = i == 0 ? min() : bounds_[i - 1];
      const double upper = i == bounds_.size() ? max() : bounds_[i];
      const double frac = in_bucket == 1
                              ? 0.5
                              : (rank - static_cast<double>(seen)) /
                                    static_cast<double>(in_bucket - 1);
      const double v = lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
      return std::clamp(v, min(), max());
    }
    seen += in_bucket;
  }
  return max();
}

bool Histogram::merge(const Histogram& other) {
  if (bounds_ != other.bounds_) return false;
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].fetch_add(other.buckets_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  const auto other_count = other.count();
  if (other_count > 0) {
    atomic_add(sum_, other.sum());
    atomic_min(min_, other.min_.load(std::memory_order_relaxed));
    atomic_max(max_, other.max_.load(std::memory_order_relaxed));
    count_.fetch_add(other_count, std::memory_order_relaxed);
  }
  return true;
}

// ---- MetricsRegistry -------------------------------------------------------

std::string_view metric_kind_name(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

MetricsRegistry::Entry* MetricsRegistry::find_or_warn(const std::string& name,
                                                      MetricKind kind) {
  const auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  if (it->second.kind != kind) {
    logger.warn() << "metric '" << name << "' already registered as "
                  << metric_kind_name(it->second.kind) << ", requested as "
                  << metric_kind_name(kind);
    return nullptr;
  }
  return &it->second;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  // Dummy sink for kind-mismatched lookups: the caller gets a functional
  // instrument that is simply never exported, instead of aliasing another
  // kind's storage.
  static Counter dummy;
  const sync::MutexLock lock(mutex_);
  if (auto* entry = find_or_warn(name, MetricKind::kCounter)) {
    if (entry->owned_counter) return *entry->owned_counter;
    return dummy;  // attached externally; owner holds the mutable handle
  }
  if (entries_.contains(name)) return dummy;  // kind mismatch, warned above
  auto& entry = entries_[name];
  entry.kind = MetricKind::kCounter;
  entry.owned_counter = std::make_unique<Counter>();
  return *entry.owned_counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  static Gauge dummy;
  const sync::MutexLock lock(mutex_);
  if (auto* entry = find_or_warn(name, MetricKind::kGauge)) {
    if (entry->owned_gauge) return *entry->owned_gauge;
    return dummy;
  }
  if (entries_.contains(name)) return dummy;
  auto& entry = entries_[name];
  entry.kind = MetricKind::kGauge;
  entry.owned_gauge = std::make_unique<Gauge>();
  return *entry.owned_gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const HistogramSpec& spec) {
  static Histogram dummy;
  const sync::MutexLock lock(mutex_);
  if (auto* entry = find_or_warn(name, MetricKind::kHistogram)) {
    if (entry->owned_histogram) return *entry->owned_histogram;
    return dummy;
  }
  if (entries_.contains(name)) return dummy;
  auto& entry = entries_[name];
  entry.kind = MetricKind::kHistogram;
  entry.owned_histogram = std::make_unique<Histogram>(spec);
  return *entry.owned_histogram;
}

void MetricsRegistry::attach(const std::string& name, const Counter* counter) {
  const sync::MutexLock lock(mutex_);
  auto& entry = entries_[name];
  entry = Entry{};  // re-attach replaces whatever held the name
  entry.kind = MetricKind::kCounter;
  entry.ext_counter = counter;
}

void MetricsRegistry::attach(const std::string& name, const Gauge* gauge) {
  const sync::MutexLock lock(mutex_);
  auto& entry = entries_[name];
  entry = Entry{};
  entry.kind = MetricKind::kGauge;
  entry.ext_gauge = gauge;
}

void MetricsRegistry::attach(const std::string& name,
                             const Histogram* histogram) {
  const sync::MutexLock lock(mutex_);
  auto& entry = entries_[name];
  entry = Entry{};
  entry.kind = MetricKind::kHistogram;
  entry.ext_histogram = histogram;
}

void MetricsRegistry::detach_prefix(const std::string& prefix) {
  const sync::MutexLock lock(mutex_);
  for (auto it = entries_.lower_bound(prefix); it != entries_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    const bool exact = it->first.size() == prefix.size();
    const bool child =
        it->first.size() > prefix.size() && it->first[prefix.size()] == '.';
    if ((exact || child) && it->second.external())
      it = entries_.erase(it);
    else
      ++it;
  }
}

Scope MetricsRegistry::scope(std::string prefix) {
  return Scope(*this, std::move(prefix));
}

std::size_t MetricsRegistry::size() const {
  const sync::MutexLock lock(mutex_);
  return entries_.size();
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  const sync::MutexLock lock(mutex_);
  RegistrySnapshot snap;
  snap.metrics.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    MetricSnapshot m;
    m.name = name;
    m.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter: {
        const Counter* c =
            entry.ext_counter ? entry.ext_counter : entry.owned_counter.get();
        m.value = static_cast<double>(c->value());
        break;
      }
      case MetricKind::kGauge: {
        const Gauge* g =
            entry.ext_gauge ? entry.ext_gauge : entry.owned_gauge.get();
        m.value = g->value();
        break;
      }
      case MetricKind::kHistogram: {
        const Histogram* h = entry.ext_histogram ? entry.ext_histogram
                                                 : entry.owned_histogram.get();
        m.count = h->count();
        m.sum = h->sum();
        m.min = h->min();
        m.max = h->max();
        m.value = h->mean();
        m.p50 = h->quantile(0.50);
        m.p90 = h->quantile(0.90);
        m.p99 = h->quantile(0.99);
        break;
      }
    }
    snap.metrics.push_back(std::move(m));
  }
  return snap;
}

}  // namespace biot::obs
