// Timers feeding obs::Histogram, in both time domains the repo runs in:
// wall-clock (real CPU cost: PoW grinds, bench iterations) and sim-time
// (protocol latency: sync round-trips, admission-to-confirmation). Mixing
// the two is the classic instrumentation bug — a sim-time histogram fed
// wall durations reads as microsecond network latency — so the domain is
// part of the type.
#pragma once

#include <chrono>

#include "common/clock.h"
#include "obs/metrics.h"

namespace biot::obs {

/// Stopwatch over std::chrono::steady_clock, reporting seconds as double.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double elapsed() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  /// Seconds since the last lap()/reset()/construction, restarting the
  /// timer — one clock read, for timing consecutive stages back-to-back.
  double lap() {
    const auto now = std::chrono::steady_clock::now();
    const double d = std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return d;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Observes the wall-clock duration of its scope into a histogram.
class ScopedWallTimer {
 public:
  explicit ScopedWallTimer(Histogram& hist) : hist_(hist) {}
  ScopedWallTimer(const ScopedWallTimer&) = delete;
  ScopedWallTimer& operator=(const ScopedWallTimer&) = delete;
  ~ScopedWallTimer() { hist_.observe(timer_.elapsed()); }

 private:
  Histogram& hist_;
  WallTimer timer_;
};

/// Observes the SIM-time duration of its scope into a histogram. Only
/// meaningful when the scope spans scheduler activity (e.g. around a
/// run_until); within one event handler sim time does not advance.
class ScopedSimTimer {
 public:
  ScopedSimTimer(const Clock& clock, Histogram& hist)
      : clock_(clock), hist_(hist), start_(clock.now()) {}
  ScopedSimTimer(const ScopedSimTimer&) = delete;
  ScopedSimTimer& operator=(const ScopedSimTimer&) = delete;
  ~ScopedSimTimer() { hist_.observe(clock_.now() - start_); }

 private:
  const Clock& clock_;
  Histogram& hist_;
  TimePoint start_;
};

}  // namespace biot::obs
