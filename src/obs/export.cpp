#include "obs/export.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace biot::obs {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void append_histogram_fields(std::string& out, const MetricSnapshot& m) {
  out += "\"count\": ";
  out += std::to_string(m.count);
  out += ", \"sum\": " + fmt_double(m.sum);
  out += ", \"min\": " + fmt_double(m.min);
  out += ", \"max\": " + fmt_double(m.max);
  out += ", \"mean\": " + fmt_double(m.value);
  out += ", \"p50\": " + fmt_double(m.p50);
  out += ", \"p90\": " + fmt_double(m.p90);
  out += ", \"p99\": " + fmt_double(m.p99);
}

}  // namespace

std::string to_text(const RegistrySnapshot& snapshot) {
  std::ostringstream out;
  std::size_t width = 0;
  for (const auto& m : snapshot.metrics) width = std::max(width, m.name.size());
  for (const auto& m : snapshot.metrics) {
    out << m.name << std::string(width - m.name.size() + 2, ' ');
    switch (m.kind) {
      case MetricKind::kCounter:
        out << static_cast<std::uint64_t>(m.value);
        break;
      case MetricKind::kGauge:
        out << m.value;
        break;
      case MetricKind::kHistogram:
        out << "count=" << m.count << " mean=" << m.value << " p50=" << m.p50
            << " p90=" << m.p90 << " p99=" << m.p99;
        break;
    }
    out << '\n';
  }
  return out.str();
}

std::string to_json(const RegistrySnapshot& snapshot) {
  std::string out = "{\n  \"schema\": \"biot-metrics-v1\",\n  \"metrics\": {";
  bool first = true;
  for (const auto& m : snapshot.metrics) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + m.name + "\": {\"kind\": \"";
    out += metric_kind_name(m.kind);
    out += "\", ";
    if (m.kind == MetricKind::kHistogram) {
      append_histogram_fields(out, m);
    } else {
      out += "\"value\": " + fmt_double(m.value);
    }
    out += "}";
  }
  out += "\n  }\n}\n";
  return out;
}

Status write_json(const RegistrySnapshot& snapshot, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    return Status::error(ErrorCode::kInternal, "cannot open " + path);
  const std::string json = to_json(snapshot);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size())
    return Status::error(ErrorCode::kInternal, "short write to " + path);
  return Status::ok();
}

namespace {

// Cursor over the known-shape JSON that to_json emits: objects, string
// keys, string or numeric values. Whitespace-tolerant, nothing more.
struct Cursor {
  const std::string& s;
  std::size_t i = 0;

  void skip_ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])))
      ++i;
  }
  bool eat(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool peek(char c) {
    skip_ws();
    return i < s.size() && s[i] == c;
  }
  bool read_string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (i < s.size() && s[i] != '"') out += s[i++];
    return eat('"');
  }
  bool read_number(double& out) {
    skip_ws();
    const char* begin = s.c_str() + i;
    char* end = nullptr;
    out = std::strtod(begin, &end);
    if (end == begin) return false;
    i += static_cast<std::size_t>(end - begin);
    return true;
  }
};

Status parse_error(const std::string& what) {
  return Status::error(ErrorCode::kInvalidArgument,
                       "biot-metrics-v1 parse: " + what);
}

}  // namespace

Result<std::map<std::string, double>> parse_flat_json(const std::string& json) {
  std::map<std::string, double> flat;
  Cursor c{json};
  if (!c.eat('{')) return parse_error("missing root object");
  std::string key, value;
  bool saw_schema = false;
  while (!c.peek('}')) {
    if (!c.read_string(key) || !c.eat(':'))
      return parse_error("bad top-level key");
    if (key == "schema") {
      if (!c.read_string(value)) return parse_error("bad schema value");
      if (value != "biot-metrics-v1")
        return parse_error("unsupported schema '" + value + "'");
      saw_schema = true;
    } else if (key == "metrics") {
      if (!c.eat('{')) return parse_error("metrics is not an object");
      while (!c.peek('}')) {
        std::string metric;
        if (!c.read_string(metric) || !c.eat(':') || !c.eat('{'))
          return parse_error("bad metric entry");
        while (!c.peek('}')) {
          std::string field;
          if (!c.read_string(field) || !c.eat(':'))
            return parse_error("bad field in " + metric);
          if (field == "kind") {
            if (!c.read_string(value))
              return parse_error("bad kind in " + metric);
          } else {
            double number = 0.0;
            if (!c.read_number(number))
              return parse_error("bad number in " + metric + "/" + field);
            flat[metric + "/" + field] = number;
          }
          if (!c.eat(',')) break;
        }
        if (!c.eat('}')) return parse_error("unterminated metric " + metric);
        if (!c.eat(',')) break;
      }
      if (!c.eat('}')) return parse_error("unterminated metrics object");
    } else {
      return parse_error("unknown top-level key '" + key + "'");
    }
    if (!c.eat(',')) break;
  }
  if (!c.eat('}')) return parse_error("unterminated root object");
  if (!saw_schema) return parse_error("missing schema tag");
  return flat;
}

}  // namespace biot::obs
