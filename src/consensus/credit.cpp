#include "consensus/credit.h"

#include <algorithm>
#include <cmath>

namespace biot::consensus {

std::string_view behaviour_name(Behaviour b) noexcept {
  switch (b) {
    case Behaviour::kLazyTips: return "lazy_tips";
    case Behaviour::kDoubleSpend: return "double_spend";
    case Behaviour::kPoorQuality: return "poor_quality";
  }
  return "unknown";
}

void CreditModel::record_valid_tx(const tangle::TxId& id, TimePoint t) {
  valid_.push_back(ValidTx{id, t});
}

void CreditModel::record_malicious(Behaviour b, TimePoint t) {
  malicious_.push_back(Offence{b, t});
}

double CreditModel::positive_credit(TimePoint now,
                                    const WeightOracle& weight_of) const {
  // Only transactions inside the latest dT window contribute (Eqn 3); an
  // inactive node's CrP falls to 0 — "the system will not decrease the
  // difficulty of PoW for it".
  const TimePoint window_start = now - params_.delta_t;
  double sum = 0.0;
  for (auto it = valid_.rbegin(); it != valid_.rend(); ++it) {
    if (it->time < window_start) break;  // deque is time-ordered
    if (it->time > now) continue;        // ignore future records defensively
    sum += weight_of(it->id);
  }
  return sum / params_.delta_t;
}

double CreditModel::negative_credit(TimePoint now) const {
  double sum = 0.0;
  for (const auto& offence : malicious_) {
    const double elapsed = std::max(now - offence.time, params_.min_elapsed);
    sum += params_.alpha(offence.behaviour) * params_.delta_t / elapsed;
  }
  return -sum;
}

double CreditModel::credit(TimePoint now, const WeightOracle& weight_of) const {
  return params_.lambda1 * positive_credit(now, weight_of) +
         params_.lambda2 * negative_credit(now);
}

int CreditModel::difficulty(TimePoint now, const WeightOracle& weight_of) const {
  // Nodes with no malicious record are only ever *rewarded*: their
  // difficulty is capped at the initial value, so a freshly-joined or
  // momentarily-idle honest node (tiny CrP) is not punished beyond the
  // baseline. Detected attackers may climb all the way to max_difficulty.
  const int upper = malicious_.empty() ? params_.initial_difficulty
                                       : params_.max_difficulty;

  const double cr = credit(now, weight_of);
  double d;
  if (cr >= params_.reference_credit) {
    d = params_.initial_difficulty -
        params_.difficulty_slope * std::log2(cr / params_.reference_credit);
  } else {
    d = params_.initial_difficulty +
        params_.penalty_gain * (params_.reference_credit - cr);
  }
  const int rounded = static_cast<int>(std::lround(d));
  return std::clamp(rounded, params_.min_difficulty, upper);
}

CreditModel& CreditRegistry::model(const tangle::AccountKey& node) {
  const auto it = models_.find(node);
  if (it != models_.end()) return it->second;
  return models_.emplace(node, CreditModel{params_}).first->second;
}

const CreditModel* CreditRegistry::find(const tangle::AccountKey& node) const {
  const auto it = models_.find(node);
  return it == models_.end() ? nullptr : &it->second;
}

double CreditRegistry::credit(const tangle::AccountKey& node, TimePoint now,
                              const WeightOracle& weight_of) const {
  const auto* m = find(node);
  return m == nullptr ? 0.0 : m->credit(now, weight_of);
}

int CreditRegistry::difficulty(const tangle::AccountKey& node, TimePoint now,
                               const WeightOracle& weight_of) const {
  const auto* m = find(node);
  return m == nullptr ? params_.initial_difficulty
                      : m->difficulty(now, weight_of);
}

}  // namespace biot::consensus
