#include "consensus/detectors.h"

namespace biot::consensus {

namespace {
bool parent_is_stale(const tangle::Tangle& tangle, const tangle::TxId& parent,
                     TimePoint now, const LazyTipPolicy& policy) {
  const auto* rec = tangle.find(parent);
  if (rec == nullptr) return false;  // unknown parents fail validation anyway
  if (now - rec->arrival <= policy.max_parent_age) return false;
  if (policy.require_already_approved) {
    if (rec->approvers.empty()) return false;
    // The approval must predate this submission by the grace window:
    // otherwise two devices handed the same stale tips (post-outage, those
    // are the ONLY tips) race to approve them, and the loser would be
    // priced as an attacker for arriving second.
    TimePoint earliest = now;
    for (const auto& approver : rec->approvers) {
      const auto* arec = tangle.find(approver);
      if (arec != nullptr && arec->arrival < earliest)
        earliest = arec->arrival;
    }
    if (now - earliest < policy.approval_grace) return false;
  }
  return true;
}
}  // namespace

bool is_lazy_approval(const tangle::Tangle& tangle, const tangle::Transaction& tx,
                      TimePoint now, const LazyTipPolicy& policy) {
  return parent_is_stale(tangle, tx.parent1, now, policy) &&
         parent_is_stale(tangle, tx.parent2, now, policy);
}

}  // namespace biot::consensus
