#include "consensus/detectors.h"

namespace biot::consensus {

namespace {
bool parent_is_stale(const tangle::Tangle& tangle, const tangle::TxId& parent,
                     TimePoint now, const LazyTipPolicy& policy) {
  const auto* rec = tangle.find(parent);
  if (rec == nullptr) return false;  // unknown parents fail validation anyway
  if (now - rec->arrival <= policy.max_parent_age) return false;
  if (policy.require_already_approved && rec->approvers.empty()) return false;
  return true;
}
}  // namespace

bool is_lazy_approval(const tangle::Tangle& tangle, const tangle::Transaction& tx,
                      TimePoint now, const LazyTipPolicy& policy) {
  return parent_is_stale(tangle, tx.parent1, now, policy) &&
         parent_is_stale(tangle, tx.parent2, now, policy);
}

}  // namespace biot::consensus
