// Proof-of-work engine (Eqn 6 of the paper):
//
//     output = hash( hash(TX1) || hash(TX2) || nonce )
//
// A nonce is valid when the output has at least `difficulty` leading zero
// bits. The Miner really grinds nonces (used by tests, examples and
// host-scale benches); the simulator's DeviceProfile models the same search
// analytically at calibrated device speeds (see sim/device_profile.h).
// ParallelMiner shards the nonce space across threads (first-found-wins) for
// server-class gateways serving offloaded-PoW attach requests.
#pragma once

#include <cstdint>
#include <optional>

#include "tangle/transaction.h"

namespace biot::consensus {

struct MineResult {
  std::uint64_t nonce = 0;
  std::uint64_t attempts = 0;  // hash evaluations performed
};

class Miner {
 public:
  /// `start_nonce` seeds the search (vary per node for determinism without
  /// collisions); `max_attempts` bounds runaway searches (0 = unbounded).
  explicit Miner(std::uint64_t start_nonce = 0, std::uint64_t max_attempts = 0)
      : next_nonce_(start_nonce), max_attempts_(max_attempts) {}

  /// Searches for a nonce meeting `difficulty` leading zero bits.
  /// Returns nullopt only when max_attempts is exhausted.
  std::optional<MineResult> mine(const tangle::TxId& parent1,
                                 const tangle::TxId& parent2, int difficulty);

  std::uint64_t total_attempts() const { return total_attempts_; }

 private:
  std::uint64_t next_nonce_;
  std::uint64_t max_attempts_;
  std::uint64_t total_attempts_ = 0;
};

/// Multi-threaded nonce search: thread t grinds the interleaved shard
/// {start + t, start + t + T, ...} and the first thread to meet the target
/// stops the others. Any returned nonce is valid; WHICH valid nonce wins a
/// given search may differ across thread counts and runs (see DESIGN.md
/// "ParallelMiner determinism"). Attempts accounting stays exact: the
/// result's `attempts` (and `total_attempts`) sum every hash evaluated by
/// every thread, so energy/work proxies remain comparable with Miner.
class ParallelMiner {
 public:
  /// `threads` = 0 picks the hardware concurrency. `max_attempts` (0 =
  /// unbounded) bounds the *combined* attempts of one `mine` call; like
  /// Miner, the search gives up only once the bound is exhausted.
  explicit ParallelMiner(unsigned threads = 0, std::uint64_t start_nonce = 0,
                         std::uint64_t max_attempts = 0);

  std::optional<MineResult> mine(const tangle::TxId& parent1,
                                 const tangle::TxId& parent2, int difficulty);

  unsigned thread_count() const { return threads_; }
  std::uint64_t total_attempts() const { return total_attempts_; }

 private:
  unsigned threads_;
  std::uint64_t start_nonce_;
  std::uint64_t max_attempts_;
  std::uint64_t total_attempts_ = 0;
};

}  // namespace biot::consensus
