// Proof-of-work engine (Eqn 6 of the paper):
//
//     output = hash( hash(TX1) || hash(TX2) || nonce )
//
// A nonce is valid when the output has at least `difficulty` leading zero
// bits. The Miner really grinds nonces (used by tests, examples and
// host-scale benches); the simulator's DeviceProfile models the same search
// analytically at calibrated device speeds (see sim/device_profile.h).
// ParallelMiner shards the nonce space across a persistent worker pool
// (first-found-wins) for server-class gateways serving offloaded-PoW attach
// requests.
//
// Both miners grind through tangle::PowMidstate: the 64 parent bytes are
// compressed once per mine() call and each attempt costs a single SHA-256
// compression of the 8-byte nonce tail (half the work of re-hashing the full
// 72-byte message), issued in multi-buffer strides of crypto::sha256_lanes()
// consecutive nonces. pow_counters() exposes the attempts/compressions ratio
// so benches can prove the ~1 block-per-attempt claim.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "obs/metrics.h"
#include "tangle/transaction.h"

namespace biot::consensus {

/// A SHA-256 digest has 256 bits, so no nonce can ever produce more leading
/// zero bits than this. Both miners refuse (nullopt) difficulties above it
/// instead of spinning forever on an unbounded search.
inline constexpr int kMaxPowDifficulty = 256;

/// Process-wide mining work counters: nonces examined and SHA-256
/// compressions spent examining them. blocks/attempt ≈ 1 with the midstate
/// cache (plus one prefix compression per mine() call); it was 2 when every
/// attempt re-hashed the full 72-byte message.
struct PowCounters {
  obs::Counter attempts;
  obs::Counter sha_blocks;
};
PowCounters& pow_counters();

struct MineResult {
  std::uint64_t nonce = 0;
  std::uint64_t attempts = 0;  // nonces examined up to and incl. the winner
};

class Miner {
 public:
  /// `start_nonce` seeds the search (vary per node for determinism without
  /// collisions); `max_attempts` bounds runaway searches (0 = unbounded).
  explicit Miner(std::uint64_t start_nonce = 0, std::uint64_t max_attempts = 0)
      : next_nonce_(start_nonce), max_attempts_(max_attempts) {}

  /// Searches for a nonce meeting `difficulty` leading zero bits.
  /// Returns nullopt when max_attempts is exhausted or the difficulty is
  /// unattainable (> kMaxPowDifficulty).
  std::optional<MineResult> mine(const tangle::TxId& parent1,
                                 const tangle::TxId& parent2, int difficulty);

  std::uint64_t total_attempts() const { return total_attempts_; }

 private:
  std::uint64_t next_nonce_;
  std::uint64_t max_attempts_;
  std::uint64_t total_attempts_ = 0;
};

/// Multi-threaded nonce search over a persistent worker pool: threads are
/// spawned once in the constructor and parked between searches, so a
/// gateway serving offloaded-PoW attach requests pays no spawn/join per
/// mine() call. The nonce space is sharded block-cyclically (blocks of 64
/// consecutive nonces, thread t takes blocks t, t+T, ...) so each thread
/// feeds the multi-buffer compressor runs of consecutive nonces; the first
/// thread to meet the target stops the others. Any returned nonce is valid;
/// WHICH valid nonce wins a given search may differ across thread counts and
/// runs (see DESIGN.md "ParallelMiner determinism"). Attempts accounting
/// stays exact: the result's `attempts` (and `total_attempts`) sum every
/// nonce examined by every thread, so energy/work proxies remain comparable
/// with Miner.
class ParallelMiner {
 public:
  /// `threads` = 0 picks the hardware concurrency. `max_attempts` (0 =
  /// unbounded) bounds the *combined* attempts of one `mine` call; like
  /// Miner, the search gives up only once the bound is exhausted.
  explicit ParallelMiner(unsigned threads = 0, std::uint64_t start_nonce = 0,
                         std::uint64_t max_attempts = 0);
  ~ParallelMiner();

  ParallelMiner(const ParallelMiner&) = delete;
  ParallelMiner& operator=(const ParallelMiner&) = delete;

  std::optional<MineResult> mine(const tangle::TxId& parent1,
                                 const tangle::TxId& parent2, int difficulty);

  unsigned thread_count() const { return threads_; }
  std::uint64_t total_attempts() const EXCLUDES(mutex_) {
    const sync::MutexLock lock(mutex_);
    return total_attempts_;
  }

 private:
  /// One search's parameters, copied out under mutex_ by each worker at job
  /// start (a PowMidstate is ~100 bytes; one copy per job, not per nonce).
  struct Job {
    tangle::PowMidstate mid;
    int difficulty = 0;
    std::uint64_t start = 0;
    std::uint64_t budget = 0;  // per-thread attempt bound (0 = unbounded)
  };

  /// What one shard reports back under mutex_ when its grind ends.
  struct ShardResult {
    std::uint64_t attempts = 0;
    std::uint64_t end_nonce = 0;  // highest nonce examined + 1
  };

  void worker_loop(unsigned t) EXCLUDES(mutex_);
  ShardResult grind_shard(unsigned t, const Job& job);

  const unsigned threads_;
  const std::uint64_t max_attempts_;

  // Job handoff: mine() publishes job_ under mutex_ and bumps job_seq_;
  // parked workers wake on work_cv_, copy the job out under the lock, grind
  // their shard lock-free (early exit rides the found_/winner_ atomics),
  // then report their ShardResult via workers_done_/done_cv_.
  mutable sync::Mutex mutex_{sync::kRankMiner};
  sync::CondVar work_cv_;
  sync::CondVar done_cv_;
  std::uint64_t job_seq_ GUARDED_BY(mutex_) = 0;
  unsigned workers_done_ GUARDED_BY(mutex_) = 0;
  bool shutdown_ GUARDED_BY(mutex_) = false;
  std::optional<Job> job_ GUARDED_BY(mutex_);
  std::uint64_t start_nonce_ GUARDED_BY(mutex_);
  std::uint64_t total_attempts_ GUARDED_BY(mutex_) = 0;
  std::vector<std::uint64_t> shard_attempts_ GUARDED_BY(mutex_);
  std::vector<std::uint64_t> shard_end_ GUARDED_BY(mutex_);

  std::atomic<bool> found_{false};
  std::atomic<std::uint64_t> winner_{0};

  // biot-lint: allow(guarded-field) written in ctor, joined in dtor only
  std::vector<std::thread> pool_;
};

}  // namespace biot::consensus
