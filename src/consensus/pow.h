// Proof-of-work engine (Eqn 6 of the paper):
//
//     output = hash( hash(TX1) || hash(TX2) || nonce )
//
// A nonce is valid when the output has at least `difficulty` leading zero
// bits. The Miner really grinds nonces (used by tests, examples and
// host-scale benches); the simulator's DeviceProfile models the same search
// analytically at calibrated device speeds (see sim/device_profile.h).
// ParallelMiner shards the nonce space across a persistent worker pool
// (first-found-wins) for server-class gateways serving offloaded-PoW attach
// requests.
//
// Both miners grind through tangle::PowMidstate: the 64 parent bytes are
// compressed once per mine() call and each attempt costs a single SHA-256
// compression of the 8-byte nonce tail (half the work of re-hashing the full
// 72-byte message), issued in multi-buffer strides of crypto::sha256_lanes()
// consecutive nonces. pow_counters() exposes the attempts/compressions ratio
// so benches can prove the ~1 block-per-attempt claim.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "tangle/transaction.h"

namespace biot::consensus {

/// A SHA-256 digest has 256 bits, so no nonce can ever produce more leading
/// zero bits than this. Both miners refuse (nullopt) difficulties above it
/// instead of spinning forever on an unbounded search.
inline constexpr int kMaxPowDifficulty = 256;

/// Process-wide mining work counters: nonces examined and SHA-256
/// compressions spent examining them. blocks/attempt ≈ 1 with the midstate
/// cache (plus one prefix compression per mine() call); it was 2 when every
/// attempt re-hashed the full 72-byte message.
struct PowCounters {
  obs::Counter attempts;
  obs::Counter sha_blocks;
};
PowCounters& pow_counters();

struct MineResult {
  std::uint64_t nonce = 0;
  std::uint64_t attempts = 0;  // nonces examined up to and incl. the winner
};

class Miner {
 public:
  /// `start_nonce` seeds the search (vary per node for determinism without
  /// collisions); `max_attempts` bounds runaway searches (0 = unbounded).
  explicit Miner(std::uint64_t start_nonce = 0, std::uint64_t max_attempts = 0)
      : next_nonce_(start_nonce), max_attempts_(max_attempts) {}

  /// Searches for a nonce meeting `difficulty` leading zero bits.
  /// Returns nullopt when max_attempts is exhausted or the difficulty is
  /// unattainable (> kMaxPowDifficulty).
  std::optional<MineResult> mine(const tangle::TxId& parent1,
                                 const tangle::TxId& parent2, int difficulty);

  std::uint64_t total_attempts() const { return total_attempts_; }

 private:
  std::uint64_t next_nonce_;
  std::uint64_t max_attempts_;
  std::uint64_t total_attempts_ = 0;
};

/// Multi-threaded nonce search over a persistent worker pool: threads are
/// spawned once in the constructor and parked between searches, so a
/// gateway serving offloaded-PoW attach requests pays no spawn/join per
/// mine() call. The nonce space is sharded block-cyclically (blocks of 64
/// consecutive nonces, thread t takes blocks t, t+T, ...) so each thread
/// feeds the multi-buffer compressor runs of consecutive nonces; the first
/// thread to meet the target stops the others. Any returned nonce is valid;
/// WHICH valid nonce wins a given search may differ across thread counts and
/// runs (see DESIGN.md "ParallelMiner determinism"). Attempts accounting
/// stays exact: the result's `attempts` (and `total_attempts`) sum every
/// nonce examined by every thread, so energy/work proxies remain comparable
/// with Miner.
class ParallelMiner {
 public:
  /// `threads` = 0 picks the hardware concurrency. `max_attempts` (0 =
  /// unbounded) bounds the *combined* attempts of one `mine` call; like
  /// Miner, the search gives up only once the bound is exhausted.
  explicit ParallelMiner(unsigned threads = 0, std::uint64_t start_nonce = 0,
                         std::uint64_t max_attempts = 0);
  ~ParallelMiner();

  ParallelMiner(const ParallelMiner&) = delete;
  ParallelMiner& operator=(const ParallelMiner&) = delete;

  std::optional<MineResult> mine(const tangle::TxId& parent1,
                                 const tangle::TxId& parent2, int difficulty);

  unsigned thread_count() const { return threads_; }
  std::uint64_t total_attempts() const { return total_attempts_; }

 private:
  void worker_loop(unsigned t);
  void grind_shard(unsigned t);

  unsigned threads_;
  std::uint64_t start_nonce_;
  std::uint64_t max_attempts_;
  std::uint64_t total_attempts_ = 0;

  // Job handoff: mine() publishes the job fields under mutex_ and bumps
  // job_seq_; parked workers wake on work_cv_, grind their shard, then
  // report via workers_done_/done_cv_. Workers read the job fields without
  // the lock — safe because the fields are written before the seq bump and
  // read only after observing it (mutex hand-off orders the accesses), and
  // no worker runs between jobs.
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t job_seq_ = 0;
  unsigned workers_done_ = 0;
  bool shutdown_ = false;

  std::optional<tangle::PowMidstate> job_mid_;
  int job_difficulty_ = 0;
  std::uint64_t job_start_ = 0;
  std::uint64_t job_budget_ = 0;  // per-thread attempt budget (0 = unbounded)
  std::atomic<bool> found_{false};
  std::atomic<std::uint64_t> winner_{0};
  std::vector<std::uint64_t> shard_attempts_;
  std::vector<std::uint64_t> shard_end_;  // highest nonce examined + 1

  std::vector<std::thread> pool_;
};

}  // namespace biot::consensus
