// Credit-based PoW mechanism — the paper's core contribution (Section IV-B).
//
// Each node i carries a credit value
//
//     Cr_i = lambda1 * CrP_i + lambda2 * CrN_i                      (Eqn 2)
//     CrP_i = sum_{k=1..n_i} w_k / dT                               (Eqn 3)
//     CrN_i = - sum_{k=1..m_i} alpha(B) * dT / (t - t_k)            (Eqn 4)
//     alpha(B) = alpha_l (lazy tips) | alpha_d (double-spending)    (Eqn 5)
//
// where w_k is the weight (validation count) of the node's k-th valid
// transaction inside the latest dT window, and t_k the time of its k-th
// malicious behaviour. PoW difficulty is inversely proportional to credit
// (Cr ∝ 1/D), so honest activity lowers the difficulty while each detected
// attack spikes it toward the maximum.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "tangle/transaction.h"

namespace biot::consensus {

/// Malicious behaviours the mechanism punishes. Lazy tips and double-spends
/// are the paper's threat model (Section III); poor data quality is our
/// implementation of the paper's future-work extension (Section VIII) —
/// persistent garbage readings are punished through the same Eqn 4/5 path.
enum class Behaviour : std::uint8_t {
  kLazyTips = 0,
  kDoubleSpend = 1,
  kPoorQuality = 2,
};

std::string_view behaviour_name(Behaviour b) noexcept;

/// Tunable parameters; defaults are the paper's evaluation settings
/// (Section VI-A): lambda1 = 1, lambda2 = 0.5, dT = 30 s, alpha_l = 0.5,
/// alpha_d = 1, difficulty range 1..14 with initial difficulty 11.
struct CreditParams {
  double lambda1 = 1.0;
  double lambda2 = 0.5;
  double delta_t = 30.0;        // seconds
  double alpha_lazy = 0.5;
  double alpha_double = 1.0;
  double alpha_quality = 0.25;  // future-work extension: bad-data penalty
  double min_elapsed = 0.5;     // clamps Eqn 4's divisor near t == t_k
  int initial_difficulty = 11;  // D for nodes with zero credit history
  int min_difficulty = 1;
  int max_difficulty = 14;
  /// Credit at which difficulty equals initial_difficulty; honest steady
  /// state sits above this, pushing D below the initial value (Fig 9).
  double reference_credit = 1.0;
  /// Bits of difficulty removed per doubling of credit (see
  /// CreditModel::difficulty): expected PoW work scales as Cr^-slope.
  double difficulty_slope = 2.0;
  /// Bits of difficulty added per unit of credit *below* the reference
  /// (the punishment ramp; reached from Eqn 4's negative spike).
  double penalty_gain = 1.5;

  double alpha(Behaviour b) const {
    switch (b) {
      case Behaviour::kLazyTips: return alpha_lazy;
      case Behaviour::kDoubleSpend: return alpha_double;
      case Behaviour::kPoorQuality: return alpha_quality;
    }
    return alpha_double;
  }
};

/// Maps TxId -> current weight (validation count). Supplied by the gateway,
/// typically backed by tangle::approximate_weights or cumulative_weight.
using WeightOracle = std::function<double(const tangle::TxId&)>;

/// Credit state for a single node.
class CreditModel {
 public:
  explicit CreditModel(CreditParams params = {}) : params_(params) {}

  /// Records an accepted transaction from this node.
  void record_valid_tx(const tangle::TxId& id, TimePoint t);
  /// Records a detected malicious behaviour.
  void record_malicious(Behaviour b, TimePoint t);

  /// Eqn 3: activity inside the latest dT window, weighted by validations.
  double positive_credit(TimePoint now, const WeightOracle& weight_of) const;
  /// Eqn 4: decaying penalty over all recorded malicious behaviours.
  double negative_credit(TimePoint now) const;
  /// Eqn 2.
  double credit(TimePoint now, const WeightOracle& weight_of) const;

  /// Difficulty from credit. The paper states Cr ∝ 1/D; since the *work* a
  /// difficulty demands is 2^D, we realize the inverse proportionality on
  /// work above the reference point, and ramp punishment linearly below it
  /// (matching Fig 8, where the node resumes its normal rate while Cr is
  /// still slightly negative):
  ///
  ///   Cr >= Cr_ref:  D = D_init - slope * log2(Cr / Cr_ref)     (reward)
  ///   Cr <  Cr_ref:  D = D_init + penalty_gain * (Cr_ref - Cr)  (punish)
  ///
  /// both clamped to [min_difficulty, upper], where upper is D_init for
  /// nodes with no malicious record (honest-but-idle nodes are never pushed
  /// beyond the baseline) and D_max for detected attackers. A fresh Eqn 4
  /// spike (Cr ~ -lambda2*alpha*dT/min_elapsed) lands on D_max; as the
  /// penalty decays hyperbolically, D descends continuously back to normal.
  int difficulty(TimePoint now, const WeightOracle& weight_of) const;

  std::size_t malicious_count() const { return malicious_.size(); }
  std::size_t valid_tx_count() const { return valid_.size(); }
  const CreditParams& params() const { return params_; }

 private:
  struct ValidTx {
    tangle::TxId id;
    TimePoint time;
  };
  struct Offence {
    Behaviour behaviour;
    TimePoint time;
  };

  CreditParams params_;
  std::deque<ValidTx> valid_;      // pruned below now - dT lazily
  std::vector<Offence> malicious_; // never pruned: the impact decays but
                                   // is never fully eliminated (Section IV-B)
};

/// Per-account credit registry shared by gateways. Accounts appear on first
/// touch with an empty history (credit 0 -> initial difficulty).
class CreditRegistry {
 public:
  explicit CreditRegistry(CreditParams params = {}) : params_(params) {}

  void record_valid_tx(const tangle::AccountKey& node, const tangle::TxId& id,
                       TimePoint t) {
    model(node).record_valid_tx(id, t);
  }
  void record_malicious(const tangle::AccountKey& node, Behaviour b, TimePoint t) {
    model(node).record_malicious(b, t);
  }

  double credit(const tangle::AccountKey& node, TimePoint now,
                const WeightOracle& weight_of) const;
  int difficulty(const tangle::AccountKey& node, TimePoint now,
                 const WeightOracle& weight_of) const;

  const CreditParams& params() const { return params_; }
  /// Direct access (creates the model if absent).
  CreditModel& model(const tangle::AccountKey& node);
  const CreditModel* find(const tangle::AccountKey& node) const;

 private:
  CreditParams params_;
  std::unordered_map<tangle::AccountKey, CreditModel, FixedBytesHash<32>> models_;
};

}  // namespace biot::consensus
