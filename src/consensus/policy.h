// Difficulty policies: how a gateway (and a well-behaved light node) decides
// the PoW difficulty required for a sender's next transaction.
//
// FixedDifficultyPolicy is the paper's "original PoW" control experiment;
// CreditDifficultyPolicy is the credit-based mechanism under evaluation.
#pragma once

#include "consensus/credit.h"

namespace biot::consensus {

class DifficultyPolicy {
 public:
  virtual ~DifficultyPolicy() = default;
  /// Difficulty required from `sender` at time `now`; `weight_of` resolves
  /// transaction weights against the current tangle state.
  virtual int required_difficulty(const tangle::AccountKey& sender,
                                  TimePoint now,
                                  const WeightOracle& weight_of) const = 0;
};

/// Constant difficulty for everyone (original PoW baseline).
class FixedDifficultyPolicy final : public DifficultyPolicy {
 public:
  explicit FixedDifficultyPolicy(int difficulty) : difficulty_(difficulty) {}
  int required_difficulty(const tangle::AccountKey&, TimePoint,
                          const WeightOracle&) const override {
    return difficulty_;
  }

 private:
  int difficulty_;
};

/// Credit-based difficulty (the paper's mechanism). Not owning: the registry
/// is shared with the gateway that records behaviours into it.
class CreditDifficultyPolicy final : public DifficultyPolicy {
 public:
  explicit CreditDifficultyPolicy(const CreditRegistry& registry)
      : registry_(registry) {}
  int required_difficulty(const tangle::AccountKey& sender, TimePoint now,
                          const WeightOracle& weight_of) const override {
    return registry_.difficulty(sender, now, weight_of);
  }

 private:
  const CreditRegistry& registry_;
};

}  // namespace biot::consensus
