// Behaviour detectors feeding the credit model.
//
// Lazy tips (threat model, Section III): a node that keeps approving a fixed
// pair of very old, already-verified transactions instead of fresh tips.
// "Lazy tips behaviours can be detected easily according to verification
// records on blockchain" (Section VI-C) — the records consulted here are the
// parents' arrival times and approval counts.
//
// Double-spending is detected by the ledger (tangle/ledger.h, kConflict).
#pragma once

#include "common/clock.h"
#include "tangle/tangle.h"

namespace biot::consensus {

struct LazyTipPolicy {
  /// A parent older than this (seconds since it arrived) is "very old".
  Duration max_parent_age = 20.0;
  /// Only count a parent as lazily chosen if someone else already verified
  /// it (a genuinely slow network may leave old true tips around).
  bool require_already_approved = true;
  /// ... and only if that first verification happened at least this long
  /// ago. An approval that raced in moments earlier means concurrent
  /// submitters were handed the same stale tips (a fleet healing from a
  /// shared outage drains against the only tips that exist) — the loser of
  /// that race never had a chance to learn fresher parents, which is a
  /// timing accident, not lazy behaviour.
  Duration approval_grace = 5.0;
};

/// True when BOTH parents of `tx` are stale under the policy — the
/// transaction contributes no new validation work to the tangle.
bool is_lazy_approval(const tangle::Tangle& tangle, const tangle::Transaction& tx,
                      TimePoint now, const LazyTipPolicy& policy);

}  // namespace biot::consensus
