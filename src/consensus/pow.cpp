#include "consensus/pow.h"

namespace biot::consensus {

std::optional<MineResult> Miner::mine(const tangle::TxId& parent1,
                                      const tangle::TxId& parent2,
                                      int difficulty) {
  std::uint64_t attempts = 0;
  for (;;) {
    const std::uint64_t nonce = next_nonce_++;
    ++attempts;
    ++total_attempts_;
    const auto out = tangle::pow_output(parent1, parent2, nonce);
    if (tangle::leading_zero_bits(out) >= difficulty)
      return MineResult{nonce, attempts};
    if (max_attempts_ != 0 && attempts >= max_attempts_) return std::nullopt;
  }
}

}  // namespace biot::consensus
