#include "consensus/pow.h"

#include <algorithm>

#include "crypto/sha256_midstate.h"

namespace biot::consensus {

PowCounters& pow_counters() {
  static PowCounters counters;
  return counters;
}

std::optional<MineResult> Miner::mine(const tangle::TxId& parent1,
                                      const tangle::TxId& parent2,
                                      int difficulty) {
  if (difficulty > kMaxPowDifficulty) return std::nullopt;

  PowCounters& counters = pow_counters();
  const tangle::PowMidstate mid(parent1, parent2);
  ++counters.sha_blocks;  // the one-off parent-prefix compression

  const std::uint64_t lanes = crypto::sha256_lanes();
  crypto::Sha256Digest digests[crypto::kSha256MaxLanes];
  std::uint64_t attempts = 0;
  for (;;) {
    // Clamp the stride to the remaining budget so a bounded search performs
    // exactly max_attempts_ attempts before giving up.
    std::uint64_t stride = lanes;
    if (max_attempts_ != 0)
      stride = std::min(stride, max_attempts_ - attempts);

    mid.output_many(next_nonce_, stride, digests);
    counters.sha_blocks += stride;
    for (std::uint64_t i = 0; i < stride; ++i) {
      if (tangle::leading_zero_bits(digests[i]) >= difficulty) {
        const std::uint64_t nonce = next_nonce_ + i;
        attempts += i + 1;
        next_nonce_ += i + 1;
        total_attempts_ += i + 1;
        counters.attempts += i + 1;
        return MineResult{nonce, attempts};
      }
    }
    attempts += stride;
    next_nonce_ += stride;
    total_attempts_ += stride;
    counters.attempts += stride;
    if (max_attempts_ != 0 && attempts >= max_attempts_) return std::nullopt;
  }
}

ParallelMiner::ParallelMiner(unsigned threads, std::uint64_t start_nonce,
                             std::uint64_t max_attempts)
    : threads_(threads != 0 ? threads
                            : std::max(1u, std::thread::hardware_concurrency())),
      max_attempts_(max_attempts),
      start_nonce_(start_nonce),
      shard_attempts_(threads_, 0),
      shard_end_(threads_, 0) {
  if (threads_ > 1) {
    pool_.reserve(threads_);
    for (unsigned t = 0; t < threads_; ++t)
      pool_.emplace_back([this, t] { worker_loop(t); });
  }
}

ParallelMiner::~ParallelMiner() {
  {
    const sync::MutexLock lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& th : pool_) th.join();
}

void ParallelMiner::worker_loop(unsigned t) {
  std::uint64_t last_seq = 0;
  for (;;) {
    std::optional<Job> job;
    {
      sync::MutexLock lock(mutex_);
      while (!shutdown_ && job_seq_ == last_seq) work_cv_.wait(mutex_);
      if (shutdown_) return;
      last_seq = job_seq_;
      job = *job_;  // one copy per job, not per nonce
    }
    const ShardResult result = grind_shard(t, *job);
    {
      const sync::MutexLock lock(mutex_);
      shard_attempts_[t] = result.attempts;
      shard_end_[t] = result.end_nonce;
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

ParallelMiner::ShardResult ParallelMiner::grind_shard(unsigned t,
                                                      const Job& job) {
  // Block-cyclic sharding: blocks of kBlock consecutive nonces, thread t
  // takes blocks t, t+T, t+2T, ... Consecutive nonces within a block feed
  // the multi-buffer compressor full strides; 64 is a multiple of every
  // supported lane count.
  constexpr std::uint64_t kBlock = 64;
  const unsigned n = threads_;
  const std::uint64_t lanes = crypto::sha256_lanes();
  PowCounters& counters = pow_counters();
  crypto::Sha256Digest digests[crypto::kSha256MaxLanes];

  std::uint64_t local = 0;
  std::uint64_t end_nonce = job.start;
  const auto finish = [&] {
    counters.attempts += local;
    return ShardResult{local, end_nonce};
  };

  for (std::uint64_t block = t;; block += n) {
    const std::uint64_t block_start = job.start + block * kBlock;
    for (std::uint64_t off = 0; off < kBlock;) {
      if (found_.load(std::memory_order_relaxed)) return finish();
      std::uint64_t stride = std::min<std::uint64_t>(lanes, kBlock - off);
      if (job.budget != 0) {
        if (local >= job.budget) return finish();
        stride = std::min(stride, job.budget - local);
      }
      job.mid.output_many(block_start + off, stride, digests);
      counters.sha_blocks += stride;
      for (std::uint64_t i = 0; i < stride; ++i) {
        if (tangle::leading_zero_bits(digests[i]) >= job.difficulty) {
          local += i + 1;
          end_nonce = block_start + off + i + 1;
          // First thread to find a nonce wins; losers that found one in the
          // same instant simply discard theirs.
          bool expected = false;
          if (found_.compare_exchange_strong(expected, true))
            winner_.store(block_start + off + i, std::memory_order_relaxed);
          return finish();
        }
      }
      local += stride;
      off += stride;
      end_nonce = block_start + off;
    }
  }
}

std::optional<MineResult> ParallelMiner::mine(const tangle::TxId& parent1,
                                              const tangle::TxId& parent2,
                                              int difficulty) {
  if (difficulty > kMaxPowDifficulty) return std::nullopt;

  const unsigned n = threads_;
  Job job{tangle::PowMidstate(parent1, parent2), difficulty, 0,
          // Round the per-thread budget up so the combined bound is >= the
          // requested one (a bounded search must not give up early).
          max_attempts_ == 0 ? 0 : (max_attempts_ + n - 1) / n};
  ++pow_counters().sha_blocks;  // the one-off parent-prefix compression
  {
    const sync::MutexLock lock(mutex_);
    job.start = start_nonce_;
    job_ = job;
    found_.store(false, std::memory_order_relaxed);
    winner_.store(0, std::memory_order_relaxed);
    std::fill(shard_attempts_.begin(), shard_attempts_.end(), 0);
    std::fill(shard_end_.begin(), shard_end_.end(), start_nonce_);
    workers_done_ = 0;
    ++job_seq_;
  }

  std::optional<ShardResult> solo;
  if (n == 1) {
    solo = grind_shard(0, job);
  } else {
    work_cv_.notify_all();
  }

  std::uint64_t combined = 0;
  {
    sync::MutexLock lock(mutex_);
    if (solo.has_value()) {
      shard_attempts_[0] = solo->attempts;
      shard_end_[0] = solo->end_nonce;
    } else {
      while (workers_done_ != n) done_cv_.wait(mutex_);
    }
    std::uint64_t max_end = job.start;
    for (unsigned t = 0; t < n; ++t) {
      combined += shard_attempts_[t];
      max_end = std::max(max_end, shard_end_[t]);
    }
    total_attempts_ += combined;
    // Advance the search origin past everything examined so back-to-back
    // searches over the same parents do not re-grind identical prefixes.
    start_nonce_ = max_end;
  }

  if (!found_.load(std::memory_order_relaxed)) return std::nullopt;
  return MineResult{winner_.load(std::memory_order_relaxed), combined};
}

}  // namespace biot::consensus
