#include "consensus/pow.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace biot::consensus {

std::optional<MineResult> Miner::mine(const tangle::TxId& parent1,
                                      const tangle::TxId& parent2,
                                      int difficulty) {
  std::uint64_t attempts = 0;
  for (;;) {
    const std::uint64_t nonce = next_nonce_++;
    ++attempts;
    ++total_attempts_;
    const auto out = tangle::pow_output(parent1, parent2, nonce);
    if (tangle::leading_zero_bits(out) >= difficulty)
      return MineResult{nonce, attempts};
    if (max_attempts_ != 0 && attempts >= max_attempts_) return std::nullopt;
  }
}

ParallelMiner::ParallelMiner(unsigned threads, std::uint64_t start_nonce,
                             std::uint64_t max_attempts)
    : threads_(threads != 0 ? threads
                            : std::max(1u, std::thread::hardware_concurrency())),
      start_nonce_(start_nonce),
      max_attempts_(max_attempts) {}

std::optional<MineResult> ParallelMiner::mine(const tangle::TxId& parent1,
                                              const tangle::TxId& parent2,
                                              int difficulty) {
  const unsigned n = threads_;
  // Per-thread attempt budget; round up so the combined bound is >= the
  // requested one (a bounded search must not give up early).
  const std::uint64_t per_thread_budget =
      max_attempts_ == 0 ? 0 : (max_attempts_ + n - 1) / n;

  std::atomic<bool> found{false};
  std::atomic<std::uint64_t> winner{0};
  std::vector<std::uint64_t> attempts(n, 0);

  auto worker = [&](unsigned t) {
    std::uint64_t nonce = start_nonce_ + t;
    std::uint64_t local = 0;
    while (!found.load(std::memory_order_relaxed)) {
      if (per_thread_budget != 0 && local >= per_thread_budget) break;
      ++local;
      const auto out = tangle::pow_output(parent1, parent2, nonce);
      if (tangle::leading_zero_bits(out) >= difficulty) {
        // First thread to find a nonce wins; losers that found one in the
        // same instant simply discard theirs.
        bool expected = false;
        if (found.compare_exchange_strong(expected, true))
          winner.store(nonce, std::memory_order_relaxed);
        break;
      }
      nonce += n;  // stay inside this thread's interleaved shard
    }
    attempts[t] = local;
  };

  if (n == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned t = 0; t < n; ++t) pool.emplace_back(worker, t);
    for (auto& th : pool) th.join();
  }

  std::uint64_t combined = 0;
  for (const auto a : attempts) combined += a;
  total_attempts_ += combined;
  // Advance the search origin so back-to-back searches over the same parents
  // do not re-grind identical prefixes.
  start_nonce_ += static_cast<std::uint64_t>(n) *
                  (combined / n + (combined % n != 0));

  if (!found.load(std::memory_order_relaxed)) return std::nullopt;
  return MineResult{winner.load(std::memory_order_relaxed), combined};
}

}  // namespace biot::consensus
