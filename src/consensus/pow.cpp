#include "consensus/pow.h"

#include <algorithm>

#include "crypto/sha256_midstate.h"

namespace biot::consensus {

PowCounters& pow_counters() {
  static PowCounters counters;
  return counters;
}

std::optional<MineResult> Miner::mine(const tangle::TxId& parent1,
                                      const tangle::TxId& parent2,
                                      int difficulty) {
  if (difficulty > kMaxPowDifficulty) return std::nullopt;

  PowCounters& counters = pow_counters();
  const tangle::PowMidstate mid(parent1, parent2);
  ++counters.sha_blocks;  // the one-off parent-prefix compression

  const std::uint64_t lanes = crypto::sha256_lanes();
  crypto::Sha256Digest digests[crypto::kSha256MaxLanes];
  std::uint64_t attempts = 0;
  for (;;) {
    // Clamp the stride to the remaining budget so a bounded search performs
    // exactly max_attempts_ attempts before giving up.
    std::uint64_t stride = lanes;
    if (max_attempts_ != 0)
      stride = std::min(stride, max_attempts_ - attempts);

    mid.output_many(next_nonce_, stride, digests);
    counters.sha_blocks += stride;
    for (std::uint64_t i = 0; i < stride; ++i) {
      if (tangle::leading_zero_bits(digests[i]) >= difficulty) {
        const std::uint64_t nonce = next_nonce_ + i;
        attempts += i + 1;
        next_nonce_ += i + 1;
        total_attempts_ += i + 1;
        counters.attempts += i + 1;
        return MineResult{nonce, attempts};
      }
    }
    attempts += stride;
    next_nonce_ += stride;
    total_attempts_ += stride;
    counters.attempts += stride;
    if (max_attempts_ != 0 && attempts >= max_attempts_) return std::nullopt;
  }
}

ParallelMiner::ParallelMiner(unsigned threads, std::uint64_t start_nonce,
                             std::uint64_t max_attempts)
    : threads_(threads != 0 ? threads
                            : std::max(1u, std::thread::hardware_concurrency())),
      start_nonce_(start_nonce),
      max_attempts_(max_attempts),
      shard_attempts_(threads_, 0),
      shard_end_(threads_, 0) {
  if (threads_ > 1) {
    pool_.reserve(threads_);
    for (unsigned t = 0; t < threads_; ++t)
      pool_.emplace_back([this, t] { worker_loop(t); });
  }
}

ParallelMiner::~ParallelMiner() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& th : pool_) th.join();
}

void ParallelMiner::worker_loop(unsigned t) {
  std::uint64_t last_seq = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return shutdown_ || job_seq_ != last_seq; });
      if (shutdown_) return;
      last_seq = job_seq_;
    }
    grind_shard(t);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

void ParallelMiner::grind_shard(unsigned t) {
  // Block-cyclic sharding: blocks of kBlock consecutive nonces, thread t
  // takes blocks t, t+T, t+2T, ... Consecutive nonces within a block feed
  // the multi-buffer compressor full strides; 64 is a multiple of every
  // supported lane count.
  constexpr std::uint64_t kBlock = 64;
  const unsigned n = threads_;
  const std::uint64_t lanes = crypto::sha256_lanes();
  PowCounters& counters = pow_counters();
  crypto::Sha256Digest digests[crypto::kSha256MaxLanes];

  std::uint64_t local = 0;
  std::uint64_t end_nonce = job_start_;
  const auto finish = [&] {
    counters.attempts += local;
    shard_attempts_[t] = local;
    shard_end_[t] = end_nonce;
  };

  for (std::uint64_t block = t;; block += n) {
    const std::uint64_t block_start = job_start_ + block * kBlock;
    for (std::uint64_t off = 0; off < kBlock;) {
      if (found_.load(std::memory_order_relaxed)) return finish();
      std::uint64_t stride = std::min<std::uint64_t>(lanes, kBlock - off);
      if (job_budget_ != 0) {
        if (local >= job_budget_) return finish();
        stride = std::min(stride, job_budget_ - local);
      }
      job_mid_->output_many(block_start + off, stride, digests);
      counters.sha_blocks += stride;
      for (std::uint64_t i = 0; i < stride; ++i) {
        if (tangle::leading_zero_bits(digests[i]) >= job_difficulty_) {
          local += i + 1;
          end_nonce = block_start + off + i + 1;
          // First thread to find a nonce wins; losers that found one in the
          // same instant simply discard theirs.
          bool expected = false;
          if (found_.compare_exchange_strong(expected, true))
            winner_.store(block_start + off + i, std::memory_order_relaxed);
          return finish();
        }
      }
      local += stride;
      off += stride;
      end_nonce = block_start + off;
    }
  }
}

std::optional<MineResult> ParallelMiner::mine(const tangle::TxId& parent1,
                                              const tangle::TxId& parent2,
                                              int difficulty) {
  if (difficulty > kMaxPowDifficulty) return std::nullopt;

  const unsigned n = threads_;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_mid_.emplace(parent1, parent2);
    ++pow_counters().sha_blocks;  // the one-off parent-prefix compression
    job_difficulty_ = difficulty;
    job_start_ = start_nonce_;
    // Round the per-thread budget up so the combined bound is >= the
    // requested one (a bounded search must not give up early).
    job_budget_ = max_attempts_ == 0 ? 0 : (max_attempts_ + n - 1) / n;
    found_.store(false, std::memory_order_relaxed);
    winner_.store(0, std::memory_order_relaxed);
    std::fill(shard_attempts_.begin(), shard_attempts_.end(), 0);
    std::fill(shard_end_.begin(), shard_end_.end(), start_nonce_);
    workers_done_ = 0;
    ++job_seq_;
  }

  if (n == 1) {
    grind_shard(0);
  } else {
    work_cv_.notify_all();
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return workers_done_ == n; });
  }

  std::uint64_t combined = 0;
  std::uint64_t max_end = start_nonce_;
  for (unsigned t = 0; t < n; ++t) {
    combined += shard_attempts_[t];
    max_end = std::max(max_end, shard_end_[t]);
  }
  total_attempts_ += combined;
  // Advance the search origin past everything examined so back-to-back
  // searches over the same parents do not re-grind identical prefixes.
  start_nonce_ = max_end;

  if (!found_.load(std::memory_order_relaxed)) return std::nullopt;
  return MineResult{winner_.load(std::memory_order_relaxed), combined};
}

}  // namespace biot::consensus
