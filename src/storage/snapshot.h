// Local snapshots: bounded-storage operation for full nodes.
//
// A snapshot freezes the *state* derived from the tangle — account balances,
// the consumed sequence slots of recent history, and the authorization list —
// plus the recent unconfirmed subgraph, and discards everything older. The
// dropped transactions go to the archive (archive.h) first, so history is
// never lost, only moved off the hot path. A new tangle restarts from a
// snapshot genesis whose payload commits to the state hash, which makes the
// continuation verifiable: any replica resuming from the same snapshot
// builds the same genesis id.
//
// This implements the "storage limitations" future-work item from the
// paper's conclusion with the scheme IOTA itself later shipped ("local
// snapshots").
#pragma once

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "crypto/identity.h"
#include "tangle/ledger.h"
#include "tangle/tangle.h"

namespace biot::storage {

/// Serializable ledger state at snapshot time.
struct SnapshotState {
  TimePoint taken_at = 0.0;
  /// Account balances (only non-zero balances are recorded).
  std::vector<std::pair<tangle::AccountKey, std::uint64_t>> balances;
  /// Per-account next sequence number (replay floor for resumed accounts).
  std::vector<std::pair<tangle::AccountKey, std::uint64_t>> next_sequences;
  /// Authorized device identities at snapshot time.
  std::vector<crypto::PublicIdentity> authorized;

  Bytes encode() const;
  static Result<SnapshotState> decode(ByteView wire);
  /// Commitment embedded in the snapshot genesis payload.
  crypto::Sha256Digest state_hash() const;
};

/// Result of pruning a tangle against a snapshot horizon.
struct PruneResult {
  tangle::Tangle tangle;               // fresh tangle rooted at the snapshot
  SnapshotState state;
  std::vector<tangle::TxId> archived;  // ids dropped from the hot set
  std::size_t retained = 0;            // recent txs that could NOT be carried
                                       // over (their parents were pruned) —
                                       // they remain valid in the archive
};

/// Genesis transaction for a resumed tangle: commits to the snapshot state.
tangle::Transaction make_snapshot_genesis(const SnapshotState& state);

/// Captures the current state from a ledger + authorization view.
SnapshotState capture_state(TimePoint now, const tangle::Ledger& ledger,
                            const std::vector<tangle::AccountKey>& accounts,
                            const std::vector<crypto::PublicIdentity>& authorized);

/// Prunes: every transaction with arrival < `cutoff` is listed as archived;
/// the returned tangle contains only the snapshot genesis (transactions newer
/// than the cutoff cannot be re-attached verbatim because their signed parent
/// references point into the pruned region — they are counted in `retained`
/// and likewise preserved in the archive). Devices simply re-anchor their
/// next transactions on the snapshot genesis.
PruneResult prune(const tangle::Tangle& tangle, const SnapshotState& state,
                  TimePoint cutoff);

}  // namespace biot::storage
