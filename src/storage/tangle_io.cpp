#include "storage/tangle_io.h"

#include <cstdio>
#include <sstream>

#include "common/codec.h"
#include "crypto/sha256.h"

namespace biot::storage {

Bytes serialize_tangle(const tangle::Tangle& tangle) {
  Writer w;
  const auto& order = tangle.arrival_order();
  w.u32(static_cast<std::uint32_t>(order.size()));
  for (const auto& id : order) {
    const auto* rec = tangle.find(id);
    w.f64(rec->arrival);
    w.blob(rec->tx.encode());
  }
  const auto digest = crypto::Sha256::hash(w.bytes());
  w.raw(digest.view());
  return std::move(w).take();
}

Result<tangle::Tangle> deserialize_tangle(ByteView wire) {
  if (wire.size() < 32)
    return Status::error(ErrorCode::kInvalidArgument, "tangle file: too short");
  const ByteView body = wire.subspan(0, wire.size() - 32);
  const ByteView digest = wire.subspan(wire.size() - 32);
  if (!ct_equal(crypto::Sha256::hash(body).view(), digest))
    return Status::error(ErrorCode::kVerifyFailed, "tangle file: digest mismatch");

  Reader r(body);
  const auto count = r.u32();
  if (!count) return count.status();
  if (count.value() == 0)
    return Status::error(ErrorCode::kInvalidArgument, "tangle file: no genesis");

  // First record must be the genesis.
  const auto genesis_arrival = r.f64();
  if (!genesis_arrival) return genesis_arrival.status();
  const auto genesis_wire = r.blob();
  if (!genesis_wire) return genesis_wire.status();
  auto genesis = tangle::Transaction::decode(genesis_wire.value());
  if (!genesis) return genesis.status();
  if (genesis.value().type != tangle::TxType::kGenesis)
    return Status::error(ErrorCode::kInvalidArgument,
                         "tangle file: first record is not genesis");

  tangle::Tangle tangle(genesis.value());
  for (std::uint32_t i = 1; i < count.value(); ++i) {
    const auto arrival = r.f64();
    if (!arrival) return arrival.status();
    const auto tx_wire = r.blob();
    if (!tx_wire) return tx_wire.status();
    auto tx = tangle::Transaction::decode(tx_wire.value());
    if (!tx) return tx.status();
    if (auto s = tangle.add(tx.value(), arrival.value()); !s) return s;
  }
  if (!r.at_end())
    return Status::error(ErrorCode::kInvalidArgument, "tangle file: trailing bytes");
  return tangle;
}

Status save_tangle(const tangle::Tangle& tangle, const std::string& path) {
  const Bytes wire = serialize_tangle(tangle);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr)
    return Status::error(ErrorCode::kInternal, "cannot open " + path);
  const bool ok = std::fwrite(wire.data(), 1, wire.size(), f) == wire.size();
  std::fclose(f);
  if (!ok) return Status::error(ErrorCode::kInternal, "short write to " + path);
  return Status::ok();
}

Result<tangle::Tangle> load_tangle(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    return Status::error(ErrorCode::kNotFound, "cannot open " + path);
  Bytes contents;
  char buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
    contents.insert(contents.end(), buf, buf + n);
  std::fclose(f);
  return deserialize_tangle(contents);
}

std::string to_dot(const tangle::Tangle& tangle, std::size_t max_nodes) {
  std::ostringstream out;
  out << "digraph tangle {\n  rankdir=RL;\n  node [shape=box, fontsize=9];\n";
  std::size_t emitted = 0;
  // Most recent transactions first — the interesting frontier.
  const auto& order = tangle.arrival_order();
  for (auto it = order.rbegin(); it != order.rend() && emitted < max_nodes;
       ++it, ++emitted) {
    const auto* rec = tangle.find(*it);
    const std::string name = "t" + it->hex().substr(0, 8);
    out << "  " << name << " [label=\"" << it->hex().substr(0, 8) << "\\n"
        << tangle::tx_type_name(rec->tx.type) << "\"";
    if (tangle.is_tip(*it)) out << ", style=filled, fillcolor=lightgray";
    out << "];\n";
    if (rec->tx.type != tangle::TxType::kGenesis) {
      out << "  " << name << " -> t" << rec->tx.parent1.hex().substr(0, 8)
          << ";\n";
      if (rec->tx.parent2 != rec->tx.parent1)
        out << "  " << name << " -> t" << rec->tx.parent2.hex().substr(0, 8)
            << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace biot::storage
