// Append-only transaction archive.
//
// The paper's conclusion lists "storage limitations" as an open problem:
// full nodes cannot keep the entire tangle in memory forever. The storage
// module implements the standard remedy (IOTA's "local snapshots"): old
// transactions are streamed to an append-only archive file, the live tangle
// is pruned to a snapshot (see snapshot.h), and history stays auditable
// offline.
//
// File format: magic "BIOTARC1", then repeated records
//   u64 arrival-time-bits | u32 length | tx bytes | 32-byte SHA-256 of record
// Each record carries its own digest, so truncation or corruption is
// detected on read.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"
#include "tangle/tangle.h"

namespace biot::storage {

struct ArchivedTx {
  tangle::Transaction tx;
  TimePoint arrival = 0.0;
};

/// Appends transactions to an archive file (creates it with a header when
/// absent). Not thread-safe; one writer per file.
class ArchiveWriter {
 public:
  /// Opens (or creates) `path` for appending. Throws on I/O failure.
  explicit ArchiveWriter(const std::string& path);
  ~ArchiveWriter();

  ArchiveWriter(const ArchiveWriter&) = delete;
  ArchiveWriter& operator=(const ArchiveWriter&) = delete;

  [[nodiscard]] Status append(const tangle::Transaction& tx, TimePoint arrival);
  std::uint64_t records_written() const { return records_; }

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t records_ = 0;
};

/// Reads a whole archive back. Returns kVerifyFailed if any record's digest
/// does not match (corruption), kInvalidArgument on malformed framing.
Result<std::vector<ArchivedTx>> read_archive(const std::string& path);

}  // namespace biot::storage
