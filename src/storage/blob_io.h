// Generic digest-framed blob persistence: the tangle_io trailing-SHA-256
// discipline factored out for other durable state (the light-node outbox).
// A framed blob is body || SHA-256(body); unframing verifies the digest so a
// truncated or tampered file surfaces as kVerifyFailed instead of feeding
// garbage into a strict-parse decoder.
#pragma once

#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace biot::storage {

/// Appends SHA-256(body) to a copy of `body`.
Bytes frame_blob(ByteView body);

/// Strips and verifies the trailing digest, returning the body.
Result<Bytes> unframe_blob(ByteView wire);

/// File convenience wrappers (frame on save, verify on load).
[[nodiscard]] Status save_blob(ByteView body, const std::string& path);
Result<Bytes> load_blob(const std::string& path);

}  // namespace biot::storage
