#include "storage/archive.h"

#include <cstring>
#include <stdexcept>

#include "common/codec.h"
#include "crypto/sha256.h"

namespace biot::storage {

namespace {
constexpr char kMagic[8] = {'B', 'I', 'O', 'T', 'A', 'R', 'C', '1'};
}

ArchiveWriter::ArchiveWriter(const std::string& path) {
  // Append mode; write the magic only when the file starts empty.
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr)
    throw std::runtime_error("archive: cannot open " + path);
  std::fseek(file_, 0, SEEK_END);
  if (std::ftell(file_) == 0) {
    if (std::fwrite(kMagic, 1, sizeof kMagic, file_) != sizeof kMagic)
      throw std::runtime_error("archive: cannot write header");
  }
}

ArchiveWriter::~ArchiveWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status ArchiveWriter::append(const tangle::Transaction& tx, TimePoint arrival) {
  Writer w;
  w.f64(arrival);
  const Bytes body = tx.encode();
  w.u32(static_cast<std::uint32_t>(body.size()));
  w.raw(body);
  const auto digest = crypto::Sha256::hash(w.bytes());
  w.raw(digest.view());

  const auto& buf = w.bytes();
  if (std::fwrite(buf.data(), 1, buf.size(), file_) != buf.size())
    return Status::error(ErrorCode::kInternal, "archive: short write");
  if (std::fflush(file_) != 0)
    return Status::error(ErrorCode::kInternal, "archive: flush failed");
  ++records_;
  return Status::ok();
}

Result<std::vector<ArchivedTx>> read_archive(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    return Status::error(ErrorCode::kNotFound, "archive: cannot open " + path);

  Bytes contents;
  char buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
    contents.insert(contents.end(), buf, buf + n);
  std::fclose(f);

  if (contents.size() < sizeof kMagic ||
      std::memcmp(contents.data(), kMagic, sizeof kMagic) != 0)
    return Status::error(ErrorCode::kInvalidArgument, "archive: bad magic");

  std::vector<ArchivedTx> out;
  Reader r(ByteView{contents.data() + sizeof kMagic,
                    contents.size() - sizeof kMagic});
  while (!r.at_end()) {
    const auto arrival = r.f64();
    if (!arrival) return arrival.status();
    const auto len = r.u32();
    if (!len) return len.status();
    const auto body = r.raw(len.value());
    if (!body) return body.status();
    const auto digest = r.raw(32);
    if (!digest) return digest.status();

    // Recompute the record digest over the framed fields.
    Writer w;
    w.f64(arrival.value());
    w.u32(len.value());
    w.raw(body.value());
    const auto expect = crypto::Sha256::hash(w.bytes());
    if (!ct_equal(expect.view(), digest.value()))
      return Status::error(ErrorCode::kVerifyFailed,
                           "archive: record digest mismatch");

    auto tx = tangle::Transaction::decode(body.value());
    if (!tx) return tx.status();
    out.push_back(ArchivedTx{std::move(tx).take(), arrival.value()});
  }
  return out;
}

}  // namespace biot::storage
