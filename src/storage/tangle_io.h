// Whole-tangle serialization: lets a full node persist its replica and
// cold-start from disk instead of replaying gossip (the paper's gateways
// "keep copies of the blockchain" — this is those copies on stable storage).
//
// Format: u32 count, then per transaction (in arrival order) f64 arrival +
// length-prefixed encoding, then a trailing SHA-256 over everything before
// it. Reload re-validates every transaction through Tangle::add, so a
// tampered or truncated file cannot produce a corrupt replica.
#pragma once

#include <string>

#include "common/status.h"
#include "tangle/tangle.h"

namespace biot::storage {

/// Serializes the full tangle (genesis first) to bytes.
Bytes serialize_tangle(const tangle::Tangle& tangle);

/// Rebuilds a tangle from serialize_tangle output. All structural checks
/// (signatures, PoW, parent links) run again during reconstruction.
Result<tangle::Tangle> deserialize_tangle(ByteView wire);

/// File convenience wrappers.
[[nodiscard]] Status save_tangle(const tangle::Tangle& tangle, const std::string& path);
Result<tangle::Tangle> load_tangle(const std::string& path);

/// Graphviz DOT rendering of the DAG (tips highlighted), for debugging and
/// the visualizations the IOTA ecosystem provides via thetangle.org.
std::string to_dot(const tangle::Tangle& tangle, std::size_t max_nodes = 200);

}  // namespace biot::storage
