#include "storage/snapshot.h"

#include <algorithm>

#include "common/codec.h"

namespace biot::storage {

Bytes SnapshotState::encode() const {
  Writer w;
  w.f64(taken_at);
  w.u32(static_cast<std::uint32_t>(balances.size()));
  for (const auto& [account, balance] : balances) {
    w.raw(account.view());
    w.u64(balance);
  }
  w.u32(static_cast<std::uint32_t>(next_sequences.size()));
  for (const auto& [account, seq] : next_sequences) {
    w.raw(account.view());
    w.u64(seq);
  }
  w.u32(static_cast<std::uint32_t>(authorized.size()));
  for (const auto& id : authorized) {
    w.raw(id.sign_key.view());
    w.raw(id.box_key.view());
  }
  return std::move(w).take();
}

Result<SnapshotState> SnapshotState::decode(ByteView wire) {
  Reader r(wire);
  SnapshotState out;
  const auto taken = r.f64();
  if (!taken) return taken.status();
  out.taken_at = taken.value();

  const auto nb = r.u32();
  if (!nb) return nb.status();
  for (std::uint32_t i = 0; i < nb.value(); ++i) {
    const auto key = r.raw(32);
    if (!key) return key.status();
    const auto bal = r.u64();
    if (!bal) return bal.status();
    out.balances.emplace_back(tangle::AccountKey::from_view(key.value()),
                              bal.value());
  }
  const auto ns = r.u32();
  if (!ns) return ns.status();
  for (std::uint32_t i = 0; i < ns.value(); ++i) {
    const auto key = r.raw(32);
    if (!key) return key.status();
    const auto seq = r.u64();
    if (!seq) return seq.status();
    out.next_sequences.emplace_back(tangle::AccountKey::from_view(key.value()),
                                    seq.value());
  }
  const auto na = r.u32();
  if (!na) return na.status();
  for (std::uint32_t i = 0; i < na.value(); ++i) {
    const auto sign = r.raw(32);
    if (!sign) return sign.status();
    const auto box = r.raw(32);
    if (!box) return box.status();
    out.authorized.push_back(crypto::PublicIdentity{
        crypto::Ed25519PublicKey::from_view(sign.value()),
        crypto::X25519PublicKey::from_view(box.value())});
  }
  if (!r.at_end())
    return Status::error(ErrorCode::kInvalidArgument, "snapshot: trailing bytes");
  return out;
}

crypto::Sha256Digest SnapshotState::state_hash() const {
  return crypto::Sha256::hash(encode());
}

tangle::Transaction make_snapshot_genesis(const SnapshotState& state) {
  auto genesis = tangle::Tangle::make_genesis(state.taken_at);
  genesis.payload = state.state_hash().bytes();
  return genesis;
}

SnapshotState capture_state(
    TimePoint now, const tangle::Ledger& ledger,
    const std::vector<tangle::AccountKey>& accounts,
    const std::vector<crypto::PublicIdentity>& authorized) {
  SnapshotState state;
  state.taken_at = now;
  for (const auto& account : accounts) {
    if (const auto bal = ledger.balance(account); bal > 0)
      state.balances.emplace_back(account, bal);
    if (const auto seq = ledger.next_sequence(account); seq > 0)
      state.next_sequences.emplace_back(account, seq);
  }
  // Canonical order so the state hash is replica-independent.
  std::sort(state.balances.begin(), state.balances.end());
  std::sort(state.next_sequences.begin(), state.next_sequences.end());
  state.authorized = authorized;
  std::sort(state.authorized.begin(), state.authorized.end(),
            [](const auto& a, const auto& b) { return a.sign_key < b.sign_key; });
  return state;
}

PruneResult prune(const tangle::Tangle& tangle, const SnapshotState& state,
                  TimePoint cutoff) {
  PruneResult result{tangle::Tangle(make_snapshot_genesis(state)), state, {}, 0};
  for (const auto& id : tangle.arrival_order()) {
    const auto* rec = tangle.find(id);
    if (rec->tx.type == tangle::TxType::kGenesis) continue;
    if (rec->arrival < cutoff)
      result.archived.push_back(id);
    else
      ++result.retained;
  }
  return result;
}

}  // namespace biot::storage
