#include "storage/blob_io.h"

#include <cstdio>

#include "crypto/sha256.h"

namespace biot::storage {

Bytes frame_blob(ByteView body) {
  Bytes out(body.begin(), body.end());
  const auto digest = crypto::Sha256::hash(body);
  out.insert(out.end(), digest.view().begin(), digest.view().end());
  return out;
}

Result<Bytes> unframe_blob(ByteView wire) {
  if (wire.size() < 32)
    return Status::error(ErrorCode::kInvalidArgument, "blob: too short");
  const ByteView body = wire.subspan(0, wire.size() - 32);
  const ByteView digest = wire.subspan(wire.size() - 32);
  if (!ct_equal(crypto::Sha256::hash(body).view(), digest))
    return Status::error(ErrorCode::kVerifyFailed, "blob: digest mismatch");
  return Bytes(body.begin(), body.end());
}

Status save_blob(ByteView body, const std::string& path) {
  const Bytes wire = frame_blob(body);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr)
    return Status::error(ErrorCode::kInternal, "cannot open " + path);
  const bool ok = std::fwrite(wire.data(), 1, wire.size(), f) == wire.size();
  std::fclose(f);
  if (!ok) return Status::error(ErrorCode::kInternal, "short write to " + path);
  return Status::ok();
}

Result<Bytes> load_blob(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    return Status::error(ErrorCode::kNotFound, "cannot open " + path);
  Bytes contents;
  char buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
    contents.insert(contents.end(), buf, buf + n);
  std::fclose(f);
  return unframe_blob(contents);
}

}  // namespace biot::storage
