// Device authorization via manager-signed on-chain lists (paper Eqn 1):
//
//     TX = Sign_SKM( PK_d1, PK_d2, ..., PK_dn )
//
// The manager's public key is hard-coded into the genesis configuration;
// only transactions signed by it may update the authorized-device list.
// Gateways consult the registry to block requests from unauthorized devices
// (defence against Sybil attack / DDoS, Section VI-C).
#pragma once

#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "crypto/identity.h"
#include "tangle/transaction.h"

namespace biot::auth {

/// Whether AuthRegistry::apply must verify the transaction's signature
/// itself, or may trust that the caller already did (the admission pipeline
/// verifies every transaction exactly once before observers run — see
/// DESIGN.md "Hot-path crypto").
enum class SigCheck : std::uint8_t {
  kVerify = 0,
  kPreVerified,
};

/// Payload of a kAuthorization transaction: the full replacement list of
/// authorized device identities (signing + encryption public keys).
struct AuthorizationList {
  std::vector<crypto::PublicIdentity> devices;

  Bytes encode() const;
  static Result<AuthorizationList> decode(ByteView wire);
};

class AuthRegistry {
 public:
  /// `manager_key` plays the role of the genesis-configured manager
  /// identity. The paper permits "one or more managers" per factory
  /// (Section IV-A) — register the others with add_manager.
  explicit AuthRegistry(const crypto::Ed25519PublicKey& manager_key)
      : primary_manager_(manager_key) {
    managers_.insert(manager_key);
  }

  /// Registers an additional manager allowed to publish device lists.
  void add_manager(const crypto::Ed25519PublicKey& key) { managers_.insert(key); }
  bool is_manager(const crypto::Ed25519PublicKey& key) const {
    return managers_.contains(key);
  }

  /// Applies an authorization transaction: must be type kAuthorization,
  /// sent and signed by a registered manager, with a decodable list payload.
  /// Each successful apply REPLACES that manager's list ("publish or
  /// update"); different managers' lists are independent. Pass kPreVerified
  /// when the signature was already checked upstream to skip the redundant
  /// Ed25519 verification.
  [[nodiscard]] Status apply(const tangle::Transaction& tx,
                             SigCheck sig = SigCheck::kVerify);

  bool is_authorized(const crypto::Ed25519PublicKey& device_sign_key) const {
    return devices_.contains(device_sign_key);
  }
  /// Encryption key registered for a device (needed to start key
  /// distribution); nullopt when unauthorized.
  std::optional<crypto::X25519PublicKey> box_key_of(
      const crypto::Ed25519PublicKey& device_sign_key) const;

  std::size_t authorized_count() const { return devices_.size(); }
  /// Snapshot of the currently authorized identities (unspecified order).
  std::vector<crypto::PublicIdentity> authorized_devices() const {
    std::vector<crypto::PublicIdentity> out;
    out.reserve(devices_.size());
    for (const auto& [sign, entry] : devices_)
      out.push_back(crypto::PublicIdentity{sign, entry.box_key});
    return out;
  }
  /// The genesis-configured (primary) manager key.
  const crypto::Ed25519PublicKey& manager_key() const { return primary_manager_; }
  std::uint64_t updates_applied() const { return updates_; }

 private:
  struct DeviceEntry {
    crypto::X25519PublicKey box_key;
    crypto::Ed25519PublicKey authorized_by;
  };

  crypto::Ed25519PublicKey primary_manager_;
  std::set<crypto::Ed25519PublicKey> managers_;
  std::unordered_map<crypto::Ed25519PublicKey, DeviceEntry, FixedBytesHash<32>>
      devices_;
  std::uint64_t updates_ = 0;
};

/// Builds the signed authorization transaction for a device list (Eqn 1).
/// Parents/nonce/difficulty are filled by the normal submission flow.
tangle::Transaction make_authorization_tx(const crypto::Identity& manager,
                                          const AuthorizationList& list,
                                          std::uint64_t sequence,
                                          TimePoint timestamp);

}  // namespace biot::auth
