#include "auth/keydist.h"

#include "common/codec.h"
#include "crypto/x25519.h"

namespace biot::auth {

namespace {
// Signed portions are encoded with the same codec as everything else, with a
// domain-separation label so signatures cannot be replayed across message
// types.
Bytes m1_signed_bytes(const SymmetricKey& sks, TimePoint ts, std::uint64_t nonce_a) {
  Writer w;
  w.str("biot-keydist-m1");
  w.raw(sks.view());
  w.f64(ts);
  w.u64(nonce_a);
  return std::move(w).take();
}

Bytes m2_signed_bytes(std::uint64_t nonce_b, TimePoint ts) {
  Writer w;
  w.str("biot-keydist-m2");
  w.u64(nonce_b);
  w.f64(ts);
  return std::move(w).take();
}

Bytes m3_signed_bytes(std::uint64_t nonce_b, TimePoint ts) {
  Writer w;
  w.str("biot-keydist-m3");
  w.u64(nonce_b);
  w.f64(ts);
  return std::move(w).take();
}

Status check_timestamp(TimePoint ts, TimePoint now, TimePoint& last_seen,
                       Duration max_skew) {
  if (ts <= last_seen)
    return Status::error(ErrorCode::kReplayDetected,
                         "keydist: timestamp not fresh");
  if (ts > now + max_skew || ts < now - max_skew)
    return Status::error(ErrorCode::kReplayDetected,
                         "keydist: timestamp outside skew window");
  last_seen = ts;
  return Status::ok();
}
}  // namespace

// ---- Manager ----------------------------------------------------------------

Bytes ManagerKeyDist::start_session(const crypto::PublicIdentity& device) {
  Session session;
  session.sks = rng_.fixed<32>();
  session.nonce_a = rng_.next_u64();
  session.established = false;

  const TimePoint ts = clock_.now();
  const auto sig = manager_.sign(m1_signed_bytes(session.sks, ts, session.nonce_a));

  Writer w;
  w.raw(session.sks.view());
  w.f64(ts);
  w.u64(session.nonce_a);
  w.raw(sig.view());
  const Bytes m1 = crypto::ecies_seal(device.box_key, w.bytes(), rng_);

  sessions_[device.sign_key] = session;
  return m1;
}

Result<Bytes> ManagerKeyDist::handle_m2(const crypto::PublicIdentity& device,
                                        ByteView m2) {
  const auto it = sessions_.find(device.sign_key);
  if (it == sessions_.end())
    return Status::error(ErrorCode::kNotFound, "keydist: no session for device");
  Session& session = it->second;

  auto inner = envelope_open(session.sks, m2);
  if (!inner) return inner.status();

  Reader r(inner.value());
  const auto nonce_b = r.u64();
  const auto ts2 = r.f64();
  const auto nonce_a_echo = r.u64();
  const auto sig_raw = r.raw(64);
  if (!nonce_b || !ts2 || !nonce_a_echo || !sig_raw || !r.at_end())
    return Status::error(ErrorCode::kInvalidArgument, "keydist: malformed M2");

  if (nonce_a_echo.value() != session.nonce_a)
    return Status::error(ErrorCode::kVerifyFailed,
                         "keydist: nonce_a challenge failed");

  const auto sig = crypto::Ed25519Signature::from_view(sig_raw.value());
  if (!crypto::ed25519_verify(device.sign_key,
                              m2_signed_bytes(nonce_b.value(), ts2.value()), sig))
    return Status::error(ErrorCode::kVerifyFailed, "keydist: bad device signature");

  if (auto s = check_timestamp(ts2.value(), clock_.now(), session.last_peer_ts,
                               config_.max_clock_skew);
      !s)
    return s;

  session.established = true;

  // Build M3: Enc_SKS{ sign_SKM(nonce_b, TS3) }.
  const TimePoint ts3 = clock_.now();
  const auto m3_sig = manager_.sign(m3_signed_bytes(nonce_b.value(), ts3));
  Writer w;
  w.u64(nonce_b.value());
  w.f64(ts3);
  w.raw(m3_sig.view());
  return envelope_seal(session.sks, w.bytes(), rng_);
}

bool ManagerKeyDist::session_established(
    const crypto::PublicIdentity& device) const {
  const auto it = sessions_.find(device.sign_key);
  return it != sessions_.end() && it->second.established;
}

const SymmetricKey& ManagerKeyDist::session_key(
    const crypto::PublicIdentity& device) const {
  const auto it = sessions_.find(device.sign_key);
  if (it == sessions_.end() || !it->second.established)
    throw std::logic_error("keydist: session not established");
  return it->second.sks;
}

// ---- Device -----------------------------------------------------------------

Result<Bytes> DeviceKeyDist::handle_m1(ByteView m1) {
  auto inner = crypto::ecies_open(device_.box_pair(), m1);
  if (!inner) return inner.status();

  Reader r(inner.value());
  const auto sks_raw = r.raw(32);
  const auto ts1 = r.f64();
  const auto nonce_a = r.u64();
  const auto sig_raw = r.raw(64);
  if (!sks_raw || !ts1 || !nonce_a || !sig_raw || !r.at_end())
    return Status::error(ErrorCode::kInvalidArgument, "keydist: malformed M1");

  const auto sks = SymmetricKey::from_view(sks_raw.value());
  const auto sig = crypto::Ed25519Signature::from_view(sig_raw.value());
  if (!crypto::ed25519_verify(manager_sign_key_,
                              m1_signed_bytes(sks, ts1.value(), nonce_a.value()),
                              sig))
    return Status::error(ErrorCode::kVerifyFailed,
                         "keydist: bad manager signature on M1");

  if (auto s = check_timestamp(ts1.value(), clock_.now(), last_peer_ts_,
                               config_.max_clock_skew);
      !s)
    return s;

  pending_key_ = sks;
  established_ = false;
  nonce_b_ = rng_.next_u64();

  // Build M2: Enc_SKS{ sign_SKD(nonce_b, TS2), nonce_a }.
  const TimePoint ts2 = clock_.now();
  const auto m2_sig = device_.sign(m2_signed_bytes(nonce_b_, ts2));
  Writer w;
  w.u64(nonce_b_);
  w.f64(ts2);
  w.u64(nonce_a.value());
  w.raw(m2_sig.view());
  return envelope_seal(*pending_key_, w.bytes(), rng_);
}

Status DeviceKeyDist::handle_m3(ByteView m3) {
  if (!pending_key_)
    return Status::error(ErrorCode::kNotFound, "keydist: no pending session");

  auto inner = envelope_open(*pending_key_, m3);
  if (!inner) return inner.status();

  Reader r(inner.value());
  const auto nonce_b_echo = r.u64();
  const auto ts3 = r.f64();
  const auto sig_raw = r.raw(64);
  if (!nonce_b_echo || !ts3 || !sig_raw || !r.at_end())
    return Status::error(ErrorCode::kInvalidArgument, "keydist: malformed M3");

  if (nonce_b_echo.value() != nonce_b_)
    return Status::error(ErrorCode::kVerifyFailed,
                         "keydist: nonce_b challenge failed");

  const auto sig = crypto::Ed25519Signature::from_view(sig_raw.value());
  if (!crypto::ed25519_verify(manager_sign_key_,
                              m3_signed_bytes(nonce_b_echo.value(), ts3.value()),
                              sig))
    return Status::error(ErrorCode::kVerifyFailed,
                         "keydist: bad manager signature on M3");

  if (auto s = check_timestamp(ts3.value(), clock_.now(), last_peer_ts_,
                               config_.max_clock_skew);
      !s)
    return s;

  established_ = true;
  return Status::ok();
}

const SymmetricKey& DeviceKeyDist::key() const {
  if (!established_ || !pending_key_)
    throw std::logic_error("keydist: key not established");
  return *pending_key_;
}

}  // namespace biot::auth
