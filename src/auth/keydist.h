// Symmetric secret key distribution without a central trust server
// (paper Fig 4). Three messages between the manager M and an IoT device D:
//
//   M1  M -> D : Enc_PKD{ sign_SKM(SKS, TS1, nonce_a) }      (public-key enc)
//   M2  D -> M : Enc_SKS{ sign_SKD(nonce_b, TS2), nonce_a }  (symmetric enc)
//   M3  M -> D : Enc_SKS{ sign_SKM(nonce_b, TS3) }
//
// Every message is signed by its sender (tamper evidence), carries a
// timestamp (replay resistance) and participates in a nonce
// challenge-response: nonce_a proves the device decrypted M1, nonce_b proves
// the manager holds SKS. Public-key encryption is ECIES over X25519.
#pragma once

#include <optional>
#include <unordered_map>

#include "auth/envelope.h"
#include "common/clock.h"
#include "common/status.h"
#include "crypto/identity.h"

namespace biot::auth {

struct KeyDistConfig {
  /// Maximum tolerated |TS - local now| (seconds); beyond it = replay/stale.
  Duration max_clock_skew = 5.0;
};

/// Manager side. One session per device; start_session may be called again
/// to rotate the key ("flexible to update symmetric keys if needed").
class ManagerKeyDist {
 public:
  ManagerKeyDist(const crypto::Identity& manager, const Clock& clock,
                 crypto::Csprng& rng, KeyDistConfig config = {})
      : manager_(manager), clock_(clock), rng_(rng), config_(config) {}

  /// Step 1: generates a fresh SKS and nonce_a, returns the M1 envelope.
  Bytes start_session(const crypto::PublicIdentity& device);

  /// Step 3: verifies M2 (nonce_a echo, device signature, timestamp) and
  /// returns M3. On success the session is established.
  Result<Bytes> handle_m2(const crypto::PublicIdentity& device, ByteView m2);

  bool session_established(const crypto::PublicIdentity& device) const;
  /// Established session key; throws if the handshake has not completed.
  const SymmetricKey& session_key(const crypto::PublicIdentity& device) const;

 private:
  struct Session {
    SymmetricKey sks{};
    std::uint64_t nonce_a = 0;
    bool established = false;
    TimePoint last_peer_ts = -1e300;  // monotone-timestamp replay guard
  };

  const crypto::Identity& manager_;
  const Clock& clock_;
  crypto::Csprng& rng_;
  KeyDistConfig config_;
  std::unordered_map<crypto::Ed25519PublicKey, Session, FixedBytesHash<32>>
      sessions_;
};

/// Device side.
class DeviceKeyDist {
 public:
  DeviceKeyDist(const crypto::Identity& device,
                const crypto::Ed25519PublicKey& manager_sign_key,
                const Clock& clock, crypto::Csprng& rng,
                KeyDistConfig config = {})
      : device_(device), manager_sign_key_(manager_sign_key), clock_(clock),
        rng_(rng), config_(config) {}

  /// Step 2: decrypts M1, verifies the manager signature and timestamp,
  /// stores SKS (pending) and returns M2.
  Result<Bytes> handle_m1(ByteView m1);

  /// Final step: verifies M3 (nonce_b echo, manager signature, timestamp);
  /// on success the key is confirmed established.
  [[nodiscard]] Status handle_m3(ByteView m3);

  bool established() const { return established_; }
  const SymmetricKey& key() const;

 private:
  const crypto::Identity& device_;
  crypto::Ed25519PublicKey manager_sign_key_;
  const Clock& clock_;
  crypto::Csprng& rng_;
  KeyDistConfig config_;

  std::optional<SymmetricKey> pending_key_;
  std::uint64_t nonce_b_ = 0;
  bool established_ = false;
  TimePoint last_peer_ts_ = -1e300;
};

}  // namespace biot::auth
