// Sensor-data confidentiality (paper Section IV-C): devices that collect
// sensitive data encrypt payloads with the distributed symmetric key before
// posting transactions; only key holders can decrypt. Non-sensitive data is
// posted in the clear.
#pragma once

#include <optional>

#include "auth/envelope.h"
#include "common/status.h"
#include "crypto/csprng.h"

namespace biot::auth {

class SensorDataProtector {
 public:
  /// A protector without a key passes data through unencrypted
  /// (non-sensitive devices never receive a key from the manager).
  SensorDataProtector() = default;
  explicit SensorDataProtector(SymmetricKey key) : key_(key) {}

  bool has_key() const { return key_.has_value(); }
  void install_key(SymmetricKey key) { key_ = key; }

  /// Returns {payload, encrypted?}: sealed when a key is installed.
  std::pair<Bytes, bool> protect(ByteView sensor_data, crypto::Csprng& rng) const {
    if (!key_) return {Bytes(sensor_data.begin(), sensor_data.end()), false};
    return {envelope_seal(*key_, sensor_data, rng), true};
  }

  /// Recovers plaintext from a transaction payload.
  Result<Bytes> recover(ByteView payload, bool encrypted) const {
    if (!encrypted) return Bytes(payload.begin(), payload.end());
    if (!key_)
      return Status::error(ErrorCode::kUnauthorized,
                           "data: no key to decrypt sensitive payload");
    return envelope_open(*key_, payload);
  }

 private:
  std::optional<SymmetricKey> key_;
};

}  // namespace biot::auth
