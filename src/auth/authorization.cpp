#include "auth/authorization.h"

#include "common/codec.h"

namespace biot::auth {

Bytes AuthorizationList::encode() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(devices.size()));
  for (const auto& d : devices) {
    w.raw(d.sign_key.view());
    w.raw(d.box_key.view());
  }
  return std::move(w).take();
}

Result<AuthorizationList> AuthorizationList::decode(ByteView wire) {
  Reader r(wire);
  const auto count = r.u32();
  if (!count) return count.status();

  AuthorizationList list;
  // Do NOT reserve count.value() up front: the count is attacker-controlled
  // and a forged header must not trigger a multi-gigabyte allocation. Each
  // iteration below fails fast on truncated input instead.
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto sign = r.raw(32);
    if (!sign) return sign.status();
    auto box = r.raw(32);
    if (!box) return box.status();
    list.devices.push_back(crypto::PublicIdentity{
        crypto::Ed25519PublicKey::from_view(sign.value()),
        crypto::X25519PublicKey::from_view(box.value())});
  }
  if (!r.at_end())
    return Status::error(ErrorCode::kInvalidArgument, "auth list: trailing bytes");
  return list;
}

Status AuthRegistry::apply(const tangle::Transaction& tx, SigCheck sig) {
  if (tx.type != tangle::TxType::kAuthorization)
    return Status::error(ErrorCode::kInvalidArgument,
                         "auth: not an authorization transaction");
  if (!is_manager(tx.sender))
    return Status::error(ErrorCode::kUnauthorized,
                         "auth: list not published by the manager");
  if (sig == SigCheck::kVerify && !tx.signature_valid())
    return Status::error(ErrorCode::kVerifyFailed, "auth: bad manager signature");

  auto list = AuthorizationList::decode(tx.payload);
  if (!list) return list.status();

  // Replace this manager's entries only; co-managers' lists are untouched.
  for (auto it = devices_.begin(); it != devices_.end();) {
    if (it->second.authorized_by == tx.sender)
      it = devices_.erase(it);
    else
      ++it;
  }
  for (const auto& d : list.value().devices)
    devices_.insert_or_assign(d.sign_key, DeviceEntry{d.box_key, tx.sender});
  ++updates_;
  return Status::ok();
}

std::optional<crypto::X25519PublicKey> AuthRegistry::box_key_of(
    const crypto::Ed25519PublicKey& device_sign_key) const {
  const auto it = devices_.find(device_sign_key);
  if (it == devices_.end()) return std::nullopt;
  return it->second.box_key;
}

tangle::Transaction make_authorization_tx(const crypto::Identity& manager,
                                          const AuthorizationList& list,
                                          std::uint64_t sequence,
                                          TimePoint timestamp) {
  tangle::Transaction tx;
  tx.type = tangle::TxType::kAuthorization;
  tx.sender = manager.public_identity().sign_key;
  tx.sequence = sequence;
  tx.timestamp = timestamp;
  tx.payload = list.encode();
  return tx;
}

}  // namespace biot::auth
