// Symmetric authenticated envelope: AES-256-CBC with a random IV,
// encrypt-then-MAC with HMAC-SHA256. This is "Enc_SKS{...}" in the paper's
// Fig 4 handshake and the container for encrypted sensor payloads in the
// data authority management method.
//
// Wire format: IV (16) || ciphertext (16k) || tag (32).
#pragma once

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/csprng.h"

namespace biot::auth {

using SymmetricKey = FixedBytes<32>;

Bytes envelope_seal(const SymmetricKey& key, ByteView plaintext,
                    crypto::Csprng& rng);

/// kDecryptFailed on truncation, MAC mismatch or bad padding.
Result<Bytes> envelope_open(const SymmetricKey& key, ByteView envelope);

}  // namespace biot::auth
