#include "auth/envelope.h"

#include "crypto/aes.h"
#include "crypto/aes_modes.h"
#include "crypto/hmac.h"

namespace biot::auth {

namespace {
constexpr std::size_t kIvSize = 16;
constexpr std::size_t kTagSize = 32;

// Independent encryption/MAC keys derived from the shared symmetric key.
struct SubKeys {
  Bytes enc;
  Bytes mac;
};

SubKeys derive(const SymmetricKey& key) {
  const Bytes okm = crypto::hkdf({}, key.view(),
                                 to_bytes(std::string_view{"biot-envelope-v1"}), 64);
  return SubKeys{Bytes(okm.begin(), okm.begin() + 32),
                 Bytes(okm.begin() + 32, okm.end())};
}
}  // namespace

Bytes envelope_seal(const SymmetricKey& key, ByteView plaintext,
                    crypto::Csprng& rng) {
  const SubKeys keys = derive(key);
  const Bytes iv = rng.bytes(kIvSize);
  const crypto::Aes aes(keys.enc);
  const Bytes ct = crypto::aes_cbc_encrypt(aes, iv, plaintext);
  const auto tag = crypto::hmac_sha256_concat(keys.mac, {iv, ct});
  return concat({iv, ct, tag.view()});
}

Result<Bytes> envelope_open(const SymmetricKey& key, ByteView envelope) {
  if (envelope.size() < kIvSize + crypto::kAesBlockSize + kTagSize)
    return Status::error(ErrorCode::kDecryptFailed, "envelope: too short");

  const ByteView iv = envelope.subspan(0, kIvSize);
  const ByteView ct =
      envelope.subspan(kIvSize, envelope.size() - kIvSize - kTagSize);
  const ByteView tag = envelope.subspan(envelope.size() - kTagSize);

  const SubKeys keys = derive(key);
  const auto expect = crypto::hmac_sha256_concat(keys.mac, {iv, ct});
  if (!ct_equal(expect.view(), tag))
    return Status::error(ErrorCode::kDecryptFailed, "envelope: MAC mismatch");

  const crypto::Aes aes(keys.enc);
  return crypto::aes_cbc_decrypt(aes, iv, ct);
}

}  // namespace biot::auth
