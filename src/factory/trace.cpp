#include "factory/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace biot::factory {

namespace {
/// Splits a CSV line on commas (fields in this format never contain commas).
std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, ',')) fields.push_back(field);
  return fields;
}
}  // namespace

Result<WorkloadTrace> WorkloadTrace::parse(std::string_view csv) {
  WorkloadTrace trace;
  std::istringstream in{std::string(csv)};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    if (line_no == 1 && line.rfind("time,", 0) == 0) continue;  // header

    const auto fields = split_csv(line);
    if (fields.size() != 5)
      return Status::error(ErrorCode::kInvalidArgument,
                           "trace: line " + std::to_string(line_no) +
                               ": expected 5 fields");
    TraceEvent event;
    char* end = nullptr;
    event.time = std::strtod(fields[0].c_str(), &end);
    if (end == fields[0].c_str())
      return Status::error(ErrorCode::kInvalidArgument,
                           "trace: line " + std::to_string(line_no) +
                               ": bad timestamp");
    event.reading.sensor = fields[1];
    event.reading.unit = fields[2];
    event.reading.value = std::strtod(fields[3].c_str(), &end);
    if (end == fields[3].c_str())
      return Status::error(ErrorCode::kInvalidArgument,
                           "trace: line " + std::to_string(line_no) +
                               ": bad value");
    event.reading.status = fields[4];
    event.reading.time = event.time;
    trace.events_.push_back(std::move(event));
  }
  trace.sort();
  return trace;
}

Result<WorkloadTrace> WorkloadTrace::load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    return Status::error(ErrorCode::kNotFound, "trace: cannot open " + path);
  std::string contents;
  char buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) contents.append(buf, n);
  std::fclose(f);
  return parse(contents);
}

std::string WorkloadTrace::to_csv() const {
  std::ostringstream out;
  out << "time,sensor,unit,value,status\n";
  for (const auto& e : events_) {
    out << e.time << ',' << e.reading.sensor << ',' << e.reading.unit << ','
        << e.reading.value << ',' << e.reading.status << '\n';
  }
  return out.str();
}

std::vector<std::string> WorkloadTrace::sensors() const {
  std::vector<std::string> names;
  for (const auto& e : events_) {
    if (std::find(names.begin(), names.end(), e.reading.sensor) == names.end())
      names.push_back(e.reading.sensor);
  }
  return names;
}

std::vector<TraceEvent> WorkloadTrace::for_sensor(const std::string& name) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.reading.sensor == name) out.push_back(e);
  }
  return out;
}

void WorkloadTrace::append(TraceEvent event) {
  events_.push_back(std::move(event));
}

void WorkloadTrace::sort() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.time < b.time;
                   });
}

TraceSensor::TraceSensor(std::string name, std::vector<TraceEvent> events,
                         bool sensitive)
    : name_(std::move(name)), events_(std::move(events)), sensitive_(sensitive) {
  if (events_.empty())
    throw std::invalid_argument("TraceSensor: empty event list");
}

SensorReading TraceSensor::sample(TimePoint now, Rng&) {
  auto reading = events_[next_].reading;
  next_ = (next_ + 1) % events_.size();  // loop when exhausted
  reading.time = now;                    // re-anchor to simulation time
  return reading;
}

WorkloadTrace synthesize_trace(int num_sensors, double duration,
                               double interval, std::uint64_t seed) {
  WorkloadTrace trace;
  Rng rng(seed);
  std::vector<std::unique_ptr<SensorModel>> sensors;
  sensors.reserve(static_cast<std::size_t>(num_sensors));
  for (int i = 0; i < num_sensors; ++i) sensors.push_back(make_sensor(i));

  for (double t = 0.0; t < duration; t += interval) {
    for (auto& sensor : sensors) {
      TraceEvent event;
      event.time = t + rng.uniform(0.0, interval * 0.1);  // jitter
      event.reading = sensor->sample(event.time, rng);
      trace.append(std::move(event));
    }
  }
  trace.sort();
  return trace;
}

}  // namespace biot::factory
