#include "factory/sensors.h"

#include <cmath>

namespace biot::factory {

Bytes SensorReading::encode() const {
  Writer w;
  w.str(sensor);
  w.str(unit);
  w.f64(time);
  w.f64(value);
  w.str(status);
  return std::move(w).take();
}

Result<SensorReading> SensorReading::decode(ByteView wire) {
  Reader r(wire);
  SensorReading out;
  auto sensor = r.str();
  if (!sensor) return sensor.status();
  out.sensor = std::move(sensor).take();
  auto unit = r.str();
  if (!unit) return unit.status();
  out.unit = std::move(unit).take();
  const auto time = r.f64();
  if (!time) return time.status();
  out.time = time.value();
  const auto value = r.f64();
  if (!value) return value.status();
  out.value = value.value();
  auto status = r.str();
  if (!status) return status.status();
  out.status = std::move(status).take();
  if (!r.at_end())
    return Status::error(ErrorCode::kInvalidArgument, "reading: trailing bytes");
  return out;
}

// ---- Temperature ------------------------------------------------------------

TemperatureSensor::TemperatureSensor(std::string name, double setpoint_c,
                                     double reversion, double noise)
    : name_(std::move(name)),
      setpoint_(setpoint_c),
      reversion_(reversion),
      noise_(noise),
      current_(setpoint_c) {}

SensorReading TemperatureSensor::sample(TimePoint now, Rng& rng) {
  const double dt = std::max(now - last_time_, 1e-6);
  last_time_ = now;
  // Euler–Maruyama step of dX = theta (mu - X) dt + sigma dW.
  current_ += reversion_ * (setpoint_ - current_) * dt +
              noise_ * std::sqrt(dt) * rng.gaussian(0.0, 1.0);
  SensorReading r;
  r.sensor = name_;
  r.unit = "degC";
  r.time = now;
  r.value = current_;
  r.status = std::abs(current_ - setpoint_) > 5.0 ? "out_of_band" : "ok";
  return r;
}

// ---- Vibration ----------------------------------------------------------------

VibrationSensor::VibrationSensor(std::string name, double base_rms,
                                 double fault_probability)
    : name_(std::move(name)),
      base_rms_(base_rms),
      fault_probability_(fault_probability) {}

SensorReading VibrationSensor::sample(TimePoint now, Rng& rng) {
  if (fault_remaining_ == 0 && rng.bernoulli(fault_probability_))
    fault_remaining_ = 5;  // a burst of elevated readings

  double rms = base_rms_ + rng.gaussian(0.0, 0.1 * base_rms_);
  if (fault_remaining_ > 0) {
    rms *= 3.0 + rng.uniform();
    --fault_remaining_;
  }

  SensorReading r;
  r.sensor = name_;
  r.unit = "mm/s";
  r.time = now;
  r.value = rms;
  r.status = fault_remaining_ > 0 ? "fault" : "ok";
  return r;
}

// ---- Machine status ------------------------------------------------------------

MachineStatusSensor::MachineStatusSensor(std::string name)
    : name_(std::move(name)) {}

SensorReading MachineStatusSensor::sample(TimePoint now, Rng& rng) {
  // Dwell dynamics: mostly stay, occasionally transition.
  const double u = rng.uniform();
  switch (state_) {
    case State::kIdle:
      if (u < 0.3) state_ = State::kRunning;
      break;
    case State::kRunning:
      if (u < 0.02)
        state_ = State::kFault;
      else if (u < 0.10)
        state_ = State::kIdle;
      break;
    case State::kFault:
      if (u < 0.5) state_ = State::kIdle;
      break;
  }

  SensorReading r;
  r.sensor = name_;
  r.unit = "state";
  r.time = now;
  r.value = static_cast<double>(state_);
  r.status = state_ == State::kFault ? "fault"
             : state_ == State::kRunning ? "running"
                                         : "idle";
  return r;
}

// ---- Power meter ---------------------------------------------------------------

PowerMeterSensor::PowerMeterSensor(std::string name, double base_kw)
    : name_(std::move(name)), base_kw_(base_kw) {}

SensorReading PowerMeterSensor::sample(TimePoint now, Rng& rng) {
  // Duty cycle: ~60 s period, plus noise and rare inrush spikes.
  const double duty = 0.6 + 0.4 * std::sin(now * 2.0 * 3.14159265 / 60.0);
  double kw = base_kw_ * duty + rng.gaussian(0.0, 0.3);
  const bool spike = rng.bernoulli(0.02);
  if (spike) kw += base_kw_ * rng.uniform(0.5, 1.5);  // motor inrush

  SensorReading r;
  r.sensor = name_;
  r.unit = "kW";
  r.time = now;
  r.value = std::max(kw, 0.0);
  r.status = spike ? "inrush" : "ok";
  return r;
}

// ---- Door events ----------------------------------------------------------------

DoorSensor::DoorSensor(std::string name) : name_(std::move(name)) {}

SensorReading DoorSensor::sample(TimePoint now, Rng& rng) {
  if (held_open_ > 0) {
    --held_open_;
  } else if (open_) {
    if (rng.bernoulli(0.6)) open_ = false;        // usually closes soon
    else if (rng.bernoulli(0.1)) held_open_ = 10;  // propped open: alarm
  } else if (rng.bernoulli(0.15)) {
    open_ = true;
  }

  SensorReading r;
  r.sensor = name_;
  r.unit = "state";
  r.time = now;
  r.value = open_ || held_open_ > 0 ? 1.0 : 0.0;
  r.status = held_open_ > 0 ? "held_open_alarm" : (open_ ? "open" : "closed");
  return r;
}

// ---- Process recipe -------------------------------------------------------------

ProcessRecipeSensor::ProcessRecipeSensor(std::string name)
    : name_(std::move(name)) {}

SensorReading ProcessRecipeSensor::sample(TimePoint now, Rng& rng) {
  // Operating parameter for the current part: spindle speed around a
  // proprietary setpoint, revised occasionally.
  if (rng.bernoulli(0.05)) ++recipe_revision_;
  SensorReading r;
  r.sensor = name_;
  r.unit = "rpm";
  r.time = now;
  r.value = 12000.0 + 250.0 * recipe_revision_ + rng.gaussian(0.0, 15.0);
  r.status = "rev-" + std::to_string(recipe_revision_);
  return r;
}

std::unique_ptr<SensorModel> make_sensor(int index) {
  // Indices 0-3 keep their historical assignments (scenario tests and the
  // key-distribution flow rely on index % 4 == 3 being sensitive); the
  // wider mix cycles in the remaining models.
  switch (index % 6) {
    case 0:
      return std::make_unique<TemperatureSensor>(
          "temp-oven-" + std::to_string(index), 180.0);
    case 1:
      return std::make_unique<VibrationSensor>(
          "vib-spindle-" + std::to_string(index));
    case 2:
      return std::make_unique<MachineStatusSensor>(
          "status-line-" + std::to_string(index));
    case 3:
      return std::make_unique<ProcessRecipeSensor>(
          "recipe-mill-" + std::to_string(index));
    case 4:
      return std::make_unique<PowerMeterSensor>(
          "power-feed-" + std::to_string(index));
    default:
      return std::make_unique<DoorSensor>("door-bay-" + std::to_string(index));
  }
}

}  // namespace biot::factory
