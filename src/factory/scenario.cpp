#include "factory/scenario.h"

#include "storage/tangle_io.h"

namespace biot::factory {

SmartFactory::SmartFactory(ScenarioConfig config)
    : config_(config),
      manager_identity_(crypto::Identity::deterministic(config.seed)),
      coordinator_identity_(
          crypto::Identity::deterministic(config.seed * 31 + 17)) {
  network_ = std::make_unique<sim::Network>(
      scheduler_,
      std::make_unique<sim::ExponentialTailLatency>(config_.latency_base,
                                                    config_.latency_tail),
      Rng(config_.seed ^ 0x4e54ull));
  network_->stats().attach_to(metrics_.scope("net"));

  const auto genesis = tangle::Tangle::make_genesis();
  const auto manager_key = manager_identity_.public_identity().sign_key;

  // Gateways (full nodes), fully meshed for gossip.
  for (int g = 0; g < config_.num_gateways; ++g) {
    gateway_identities_.push_back(
        crypto::Identity::deterministic(config_.seed * 1000 + 1 + g));
    gateways_.push_back(std::make_unique<node::Gateway>(
        next_node_id_++, gateway_identities_.back(), manager_key, genesis,
        *network_, config_.gateway));
    gateways_.back()->bind_metrics(
        metrics_.scope("gateway.g" + std::to_string(g)));
  }
  for (auto& a : gateways_) {
    for (auto& b : gateways_) {
      if (a->node_id() != b->node_id()) a->add_peer(b->node_id());
    }
  }

  // Manager is co-located with gateway 0 (it is a specific full node).
  manager_ = std::make_unique<node::Manager>(next_node_id_++, manager_identity_,
                                             *gateways_.front(), *network_);

  if (config_.enable_coordinator) {
    coordinator_ = std::make_unique<node::Coordinator>(
        coordinator_identity_, *gateways_.front(), scheduler_,
        config_.milestone_interval);
    // Every replica must recognize the coordinator's milestones.
    for (auto& g : gateways_)
      g->set_coordinator(coordinator_identity_.public_identity().sign_key);
  }

  // Devices (light nodes) with their sensor models, spread across gateways.
  for (int d = 0; d < config_.num_devices; ++d) {
    auto device_config = config_.device;
    device_config.start_time =
        config_.device.start_time + d * config_.device_stagger;
    const auto gateway_id =
        gateways_[static_cast<std::size_t>(d) % gateways_.size()]->node_id();
    auto node = std::make_unique<node::LightNode>(
        next_node_id_++,
        crypto::Identity::deterministic(config_.seed * 5000 + 100 + d),
        gateway_id, *network_, device_config);
    // Every other gateway serves as a failover target.
    for (const auto& g : gateways_) {
      if (g->node_id() != gateway_id) node->add_backup_gateway(g->node_id());
    }

    sensors_.push_back(make_sensor(d));
    sensor_rngs_.emplace_back(config_.seed * 7000 + d);
    auto* sensor = sensors_.back().get();
    auto* rng = &sensor_rngs_.back();
    auto* sched = &scheduler_;
    node->set_data_source([sensor, rng, sched] {
      return sensor->sample(sched->now(), *rng).encode();
    });
    node->bind_metrics(metrics_.scope("device.d" + std::to_string(d)));
    devices_.push_back(std::move(node));
  }

  // Offline-exchange topology: devices countersign for their ring
  // neighbours while everyone is dark.
  if (config_.wire_exchange_ring && devices_.size() >= 2) {
    const auto n = devices_.size();
    for (std::size_t d = 0; d < n; ++d) {
      devices_[d]->add_exchange_peer(devices_[(d + 1) % n]->node_id());
      if (n > 2)
        devices_[d]->add_exchange_peer(devices_[(d + n - 1) % n]->node_id());
    }
  }
}

void SmartFactory::bootstrap() {
  for (auto& g : gateways_) g->attach();
  manager_->attach();
  if (coordinator_) coordinator_->start();

  // Step 2: publish the authorization list covering all devices.
  std::vector<crypto::PublicIdentity> list;
  list.reserve(devices_.size());
  for (const auto& d : devices_) list.push_back(d->public_identity());
  const auto status = manager_->authorize(list);
  if (!status.is_ok())
    throw std::runtime_error("bootstrap: authorization failed: " +
                             status.to_string());

  const auto manager_key = manager_identity_.public_identity().sign_key;
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    devices_[d]->enable_keydist(manager_key);
    devices_[d]->start();
  }

  // Step 3: distribute symmetric keys to sensitive-data devices once the
  // authorization gossip has propagated.
  if (config_.distribute_keys) {
    scheduler_.after(0.05, [this] {
      for (std::size_t d = 0; d < devices_.size(); ++d) {
        if (!sensors_[d]->sensitive()) continue;
        const auto dist_status = manager_->distribute_key(
            devices_[d]->public_identity(), devices_[d]->node_id());
        if (!dist_status.is_ok())
          throw std::runtime_error("bootstrap: key distribution failed: " +
                                   dist_status.to_string());
      }
    });
  }
}

void SmartFactory::crash_gateway(std::size_t i) {
  auto& g = gateway(i);
  if (!g.running()) return;
  if (persisted_.size() < gateways_.size()) persisted_.resize(gateways_.size());
  // Persist first (the crashing process's disk survives), then kill it.
  persisted_[i] = storage::serialize_tangle(g.tangle());
  g.stop();
}

void SmartFactory::restart_gateway(std::size_t i) {
  auto& g = gateway(i);
  if (g.running()) return;
  if (i >= persisted_.size() || persisted_[i].empty())
    throw std::runtime_error("restart_gateway: no persisted replica");
  auto restored = storage::deserialize_tangle(persisted_[i]);
  if (!restored)
    throw std::runtime_error("restart_gateway: snapshot rejected: " +
                             restored.status().to_string());
  g.restart(restored.value());
}

void SmartFactory::crash_device(std::size_t i) {
  auto& d = device(i);
  if (!d.running()) return;
  if (device_persisted_.size() < devices_.size())
    device_persisted_.resize(devices_.size());
  // Persist first (the flash survives the power loss), then kill it.
  device_persisted_[i] = d.serialize_offline_state();
  d.stop();
}

void SmartFactory::restart_device(std::size_t i) {
  auto& d = device(i);
  if (d.running()) return;
  if (i >= device_persisted_.size() || device_persisted_[i].empty())
    throw std::runtime_error("restart_device: no persisted offline state");
  const auto status = d.restore_offline_state(device_persisted_[i]);
  if (!status.is_ok())
    throw std::runtime_error("restart_device: snapshot rejected: " +
                             status.to_string());
  d.start();
}

void SmartFactory::stop_devices() {
  for (auto& d : devices_) d->stop();
  for (auto& d : unauthorized_) d->stop();
}

std::size_t SmartFactory::add_unauthorized_device(node::LightNodeConfig config) {
  const auto index = unauthorized_.size();
  auto node = std::make_unique<node::LightNode>(
      next_node_id_++,
      crypto::Identity::deterministic(config_.seed * 9000 + 777 + index),
      gateways_.front()->node_id(), *network_, config);
  node->start();
  node->bind_metrics(metrics_.scope("device.u" + std::to_string(index)));
  unauthorized_.push_back(std::move(node));
  return index;
}

std::uint64_t SmartFactory::total_accepted() const {
  std::uint64_t total = 0;
  for (const auto& d : devices_) total += d->stats().accepted;
  return total;
}

double SmartFactory::throughput(TimePoint t0, TimePoint t1) const {
  std::uint64_t count = 0;
  for (const auto& d : devices_) {
    for (const auto t : d->stats().accepted_times) {
      if (t >= t0 && t <= t1) ++count;
    }
  }
  return static_cast<double>(count) / std::max(t1 - t0, 1e-9);
}

}  // namespace biot::factory
