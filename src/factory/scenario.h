// Smart-factory scenario builder: wires up the full B-IoT deployment of the
// paper's case study — manager + gateways (full nodes) + wireless-sensor
// light nodes — over the simulated network, and runs the Fig 6 bootstrap:
//
//   1. manager initializes gateways (genesis carries the manager key)
//   2. manager publishes the device authorization list (Eqn 1)
//   3. manager distributes symmetric keys to sensitive-data devices (Fig 4)
//   4./5. devices submit sensor transactions (tips -> validate -> PoW)
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "factory/sensors.h"
#include "node/coordinator.h"
#include "node/gateway.h"
#include "node/light_node.h"
#include "node/manager.h"
#include "obs/metrics.h"
#include "sim/network.h"

namespace biot::factory {

struct ScenarioConfig {
  int num_gateways = 2;
  int num_devices = 4;
  /// Every (index % 4 == 3) sensor is a sensitive recipe sensor; key
  /// distribution runs for those when enabled.
  bool distribute_keys = true;
  /// Run a Coordinator issuing milestones (IOTA-style checkpoint
  /// confirmation) co-located with gateway 0.
  bool enable_coordinator = false;
  Duration milestone_interval = 5.0;
  node::GatewayConfig gateway;
  node::LightNodeConfig device;
  /// Device start times are staggered by this much to avoid lockstep.
  Duration device_stagger = 0.05;
  /// Wire each device's offline-exchange peers as a ring over the fleet
  /// (device i exchanges with i±1 mod N): the co-located-peer topology the
  /// countersigned offline protocol assumes. Needs >= 2 devices to matter.
  bool wire_exchange_ring = false;
  Duration latency_base = 0.002;
  Duration latency_tail = 0.003;
  std::uint64_t seed = 1;
};

/// Owns the entire simulated deployment.
class SmartFactory {
 public:
  explicit SmartFactory(ScenarioConfig config = {});

  /// Steps 1-3 of the workflow. Must be called before run_until.
  void bootstrap();

  /// Runs the simulation clock forward.
  void run_until(TimePoint t) { scheduler_.run_until(t); }

  sim::Scheduler& scheduler() { return scheduler_; }
  sim::Network& network() { return *network_; }
  /// Fleet-wide metrics registry. Every component's stats are attached at
  /// construction under gateway.g<i> / device.d<i> / net, so one
  /// snapshot() (or obs::to_json) renders the whole deployment.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  node::Manager& manager() { return *manager_; }
  /// Valid only when config.enable_coordinator was set.
  node::Coordinator& coordinator() { return *coordinator_; }
  node::Gateway& gateway(std::size_t i = 0) { return *gateways_.at(i); }
  std::size_t gateway_count() const { return gateways_.size(); }
  node::LightNode& device(std::size_t i) { return *devices_.at(i); }
  std::size_t device_count() const { return devices_.size(); }
  SensorModel& sensor(std::size_t i) { return *sensors_.at(i); }

  /// Crash gateway `i` mid-simulation: persists its tangle replica (the
  /// on-disk copy a real gateway maintains continuously), then stops it —
  /// detach + drop of all in-flight state. Devices homed on it will time
  /// out and fail over.
  void crash_gateway(std::size_t i);

  /// Restarts a crashed gateway from its persisted replica: deserializes
  /// the snapshot (full structural re-validation), replays it through the
  /// admission pipeline (cold-start path), re-attaches and resumes sync.
  /// Throws if the snapshot fails validation — a corrupt snapshot must not
  /// silently boot an empty gateway.
  void restart_gateway(std::size_t i);

  bool gateway_running(std::size_t i) { return gateway(i).running(); }

  /// Crash device `i` mid-simulation: persists its offline state (ledger
  /// sequence counter + outbox — the flash a real sensor keeps across power
  /// loss), then stops it. Pending timers from the dead life are expired.
  void crash_device(std::size_t i);

  /// Restarts a crashed device from its persisted offline state: the outbox
  /// (including entries that were mid-drain at crash time) and the sequence
  /// counter resume exactly where the flash left them, so nothing queued is
  /// lost and nothing is double-admitted. Throws if the snapshot fails its
  /// digest check.
  void restart_device(std::size_t i);

  bool device_running(std::size_t i) { return device(i).running(); }

  /// Quiesces all (authorized + unauthorized) devices — used before
  /// convergence checking so replicas only exchange anti-entropy traffic.
  void stop_devices();

  /// Adds an extra light node with a fresh identity that is NOT in the
  /// authorization list (Sybil / DDoS attacker). Returns its index in the
  /// unauthorized pool.
  std::size_t add_unauthorized_device(node::LightNodeConfig config);
  node::LightNode& unauthorized_device(std::size_t i) {
    return *unauthorized_.at(i);
  }
  std::size_t unauthorized_count() const { return unauthorized_.size(); }

  /// Accepted transactions across all (authorized) devices.
  std::uint64_t total_accepted() const;
  /// Accepted transactions per simulated second over [t0, t1] .
  double throughput(TimePoint t0, TimePoint t1) const;

 private:
  ScenarioConfig config_;
  // Declared before every component: attached instruments are referenced by
  // address, so the registry must be destroyed last.
  obs::MetricsRegistry metrics_;
  sim::Scheduler scheduler_;
  std::unique_ptr<sim::Network> network_;

  crypto::Identity manager_identity_;
  crypto::Identity coordinator_identity_;
  std::vector<crypto::Identity> gateway_identities_;
  std::vector<std::unique_ptr<node::Gateway>> gateways_;
  std::unique_ptr<node::Manager> manager_;
  std::unique_ptr<node::Coordinator> coordinator_;
  std::vector<std::unique_ptr<node::LightNode>> devices_;
  std::vector<std::unique_ptr<node::LightNode>> unauthorized_;
  std::vector<std::unique_ptr<SensorModel>> sensors_;
  // deque: device lambdas capture pointers to elements; push_back must not
  // invalidate them.
  std::deque<Rng> sensor_rngs_;
  /// Per-gateway persisted replica, written at crash time (stands in for the
  /// continuous on-disk persistence of a real deployment). Empty = never
  /// crashed.
  std::vector<Bytes> persisted_;
  /// Per-device persisted offline state (sequence counter + outbox).
  std::vector<Bytes> device_persisted_;
  sim::NodeId next_node_id_ = 1;
};

}  // namespace biot::factory
