#include "factory/quality.h"

#include <algorithm>
#include <cmath>

namespace biot::factory {

double QualityMonitor::z_score(Stats& s, double value) const {
  if (s.samples < policy_.warmup_samples || s.variance <= 1e-12) return 0.0;
  return (value - s.mean) / std::sqrt(s.variance);
}

double QualityMonitor::score(const SensorReading& reading) {
  Stats& s = streams_[reading.sensor];
  const double z = z_score(s, reading.value);
  const bool warmed = s.samples > policy_.warmup_samples;
  const bool outlier = warmed && std::abs(z) > policy_.z_threshold;

  if (outlier) {
    // Outliers never update the baseline (a faulty stream must not widen
    // its own acceptance band) — unless they persist long enough to be a
    // genuine regime change, in which case the baseline relearns from
    // scratch.
    if (++s.consecutive_outliers >= policy_.regime_change_after) {
      const auto outliers = s.outliers;
      const auto regimes = s.regime_changes;
      s = Stats{};
      s.outliers = outliers;
      s.regime_changes = regimes + 1;
    }
  } else {
    s.consecutive_outliers = 0;
    const double a = policy_.ewma_alpha;
    if (s.samples == 0) {
      s.mean = reading.value;
      s.variance = 0.0;
    } else {
      const double delta = reading.value - s.mean;
      s.mean += a * delta;
      s.variance = (1.0 - a) * (s.variance + a * delta * delta);
    }
  }
  ++s.samples;

  if (!warmed) return 1.0;  // still learning
  const double severity = std::abs(z) / policy_.z_threshold;
  if (severity > 1.0) ++s.outliers;
  return std::clamp(1.0 - severity, 0.0, 1.0);
}

bool QualityMonitor::is_outlier(const SensorReading& reading) {
  return score(reading) <= 0.0;
}

const QualityMonitor::Stats* QualityMonitor::stats(
    const std::string& sensor) const {
  const auto it = streams_.find(sensor);
  return it == streams_.end() ? nullptr : &it->second;
}

}  // namespace biot::factory
