// Sensor data quality control — the paper's first future-work item
// ("explore sensor data quality control schemes in blockchain-based
// systems", Section VIII).
//
// Design: gateways score each cleartext reading against a per-sensor
// exponentially-weighted running mean/variance. Readings far outside the
// learned band (or non-decodable payloads) count as poor-quality events; a
// gateway hook feeds persistent offenders into the credit mechanism as a
// third behaviour class (Behaviour::kPoorQuality, coefficient alpha_q in the
// Eqn 5 extension), so a sensor spewing garbage pays with harder PoW exactly
// like a lazy or double-spending node.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "factory/sensors.h"

namespace biot::factory {

struct QualityPolicy {
  /// EWMA smoothing factor for mean/variance updates.
  double ewma_alpha = 0.05;
  /// |z| above this is an outlier once the baseline is learned.
  double z_threshold = 6.0;
  /// Readings to observe per sensor before judging (baseline warm-up).
  std::size_t warmup_samples = 20;
  /// Outliers do not update the baseline (they would inflate the variance
  /// and mask further faults) — but this many CONSECUTIVE outliers are
  /// accepted as a genuine regime change and the baseline relearns.
  std::size_t regime_change_after = 30;
};

/// Per-sensor streaming baseline and outlier detector.
class QualityMonitor {
 public:
  explicit QualityMonitor(QualityPolicy policy = {}) : policy_(policy) {}

  /// Scores a reading in [0, 1]: 1 = perfectly in-band, 0 = extreme outlier.
  /// Updates the baseline with every call (outliers update it too, weakly).
  double score(const SensorReading& reading);

  /// Convenience: true when score < the z-threshold-equivalent cutoff and
  /// the baseline has warmed up.
  bool is_outlier(const SensorReading& reading);

  /// Observed statistics for a sensor stream (for tests/telemetry).
  struct Stats {
    std::size_t samples = 0;
    double mean = 0.0;
    double variance = 0.0;
    std::size_t outliers = 0;
    std::size_t consecutive_outliers = 0;
    std::size_t regime_changes = 0;
  };
  const Stats* stats(const std::string& sensor) const;

 private:
  double z_score(Stats& s, double value) const;

  QualityPolicy policy_;
  std::unordered_map<std::string, Stats> streams_;
};

}  // namespace biot::factory
