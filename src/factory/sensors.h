// Synthetic smart-factory sensor models (substitute for the paper's physical
// wireless sensors). Each model produces a self-describing binary reading;
// "sensitive" sensors (process recipes, QC data) are the ones whose payloads
// the data authority management method encrypts.
#pragma once

#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/codec.h"
#include "common/rng.h"
#include "common/status.h"

namespace biot::factory {

/// One decoded sensor reading.
struct SensorReading {
  std::string sensor;   // e.g. "temp-oven-3"
  std::string unit;     // e.g. "degC"
  TimePoint time = 0.0;
  double value = 0.0;
  std::string status;   // "ok", "fault", ...

  Bytes encode() const;
  static Result<SensorReading> decode(ByteView wire);
};

class SensorModel {
 public:
  virtual ~SensorModel() = default;
  virtual SensorReading sample(TimePoint now, Rng& rng) = 0;
  /// Whether this sensor's data must be encrypted before posting.
  virtual bool sensitive() const { return false; }
  virtual const std::string& name() const = 0;
};

/// Ornstein–Uhlenbeck temperature process around a setpoint.
class TemperatureSensor final : public SensorModel {
 public:
  TemperatureSensor(std::string name, double setpoint_c,
                    double reversion = 0.1, double noise = 0.4);
  SensorReading sample(TimePoint now, Rng& rng) override;
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  double setpoint_;
  double reversion_;
  double noise_;
  double current_;
  TimePoint last_time_ = 0.0;
};

/// Vibration RMS with occasional bearing-fault bursts.
class VibrationSensor final : public SensorModel {
 public:
  VibrationSensor(std::string name, double base_rms = 1.2,
                  double fault_probability = 0.01);
  SensorReading sample(TimePoint now, Rng& rng) override;
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  double base_rms_;
  double fault_probability_;
  int fault_remaining_ = 0;
};

/// Machine state (idle / running / fault) with dwell-time dynamics.
class MachineStatusSensor final : public SensorModel {
 public:
  explicit MachineStatusSensor(std::string name);
  SensorReading sample(TimePoint now, Rng& rng) override;
  const std::string& name() const override { return name_; }

 private:
  enum class State { kIdle, kRunning, kFault } state_ = State::kIdle;
  std::string name_;
};

/// Power meter: load follows a duty cycle with stochastic spikes.
class PowerMeterSensor final : public SensorModel {
 public:
  PowerMeterSensor(std::string name, double base_kw = 12.0);
  SensorReading sample(TimePoint now, Rng& rng) override;
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  double base_kw_;
};

/// Door/access events: open/closed transitions with occasional held-open
/// alarms. Access logs are sensitive in many plants.
class DoorSensor final : public SensorModel {
 public:
  explicit DoorSensor(std::string name);
  SensorReading sample(TimePoint now, Rng& rng) override;
  bool sensitive() const override { return true; }
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  bool open_ = false;
  int held_open_ = 0;
};

/// Machine operating parameters for a part recipe — the sensitive data the
/// paper's smart-factory case study shares across factories (Section IV-A).
class ProcessRecipeSensor final : public SensorModel {
 public:
  explicit ProcessRecipeSensor(std::string name);
  SensorReading sample(TimePoint now, Rng& rng) override;
  bool sensitive() const override { return true; }
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  int recipe_revision_ = 0;
};

/// Factory for the standard sensor mix used by scenarios.
std::unique_ptr<SensorModel> make_sensor(int index);

}  // namespace biot::factory
