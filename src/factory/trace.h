// Trace-driven workloads: replay recorded sensor streams through the
// simulator instead of (or alongside) the synthetic models. The paper
// evaluates with live sensors on a Raspberry Pi; a downstream user will
// want to feed their own captured data through the same pipeline.
//
// Trace format: CSV lines `time,sensor,unit,value,status` (header optional,
// '#' comments ignored). biot::factory::synthesize_trace produces a
// compatible file from the synthetic sensor models for round-trip testing.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "factory/sensors.h"

namespace biot::factory {

struct TraceEvent {
  TimePoint time = 0.0;
  SensorReading reading;
};

/// A loaded trace: time-ordered events, possibly spanning several sensors.
class WorkloadTrace {
 public:
  static Result<WorkloadTrace> parse(std::string_view csv);
  static Result<WorkloadTrace> load(const std::string& path);

  /// Serializes back to canonical CSV.
  std::string to_csv() const;

  const std::vector<TraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  TimePoint duration() const {
    return events_.empty() ? 0.0 : events_.back().time;
  }
  /// Names of the distinct sensors appearing in the trace.
  std::vector<std::string> sensors() const;
  /// Events for one sensor, in time order.
  std::vector<TraceEvent> for_sensor(const std::string& name) const;

  void append(TraceEvent event);
  /// Sorts by time (stable) — call after appending out-of-order events.
  void sort();

 private:
  std::vector<TraceEvent> events_;
};

/// Replays one sensor's slice of a trace as a SensorModel: each sample()
/// returns the next recorded reading (time-shifted to the simulation clock);
/// when the trace runs out it loops, offsetting timestamps.
class TraceSensor final : public SensorModel {
 public:
  TraceSensor(std::string name, std::vector<TraceEvent> events,
              bool sensitive = false);

  SensorReading sample(TimePoint now, Rng& rng) override;
  bool sensitive() const override { return sensitive_; }
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  std::vector<TraceEvent> events_;
  std::size_t next_ = 0;
  bool sensitive_;
};

/// Generates a synthetic trace by sampling the standard sensor mix — handy
/// for tests and as a format example.
WorkloadTrace synthesize_trace(int num_sensors, double duration,
                               double interval, std::uint64_t seed);

}  // namespace biot::factory
