// Cross-factory data sharing (paper Section IV-A): "if factories need to
// configure their machines operating parameters for processing a certain
// kind of parts, they do not need to debug machines independently. They can
// request solutions of the same parts from other factories which have
// configured them through B-IoT."
//
// Two independent smart factories share one public tangle. Factory A's
// milling machine publishes its (encrypted) process recipes; factory A's
// manager shares the symmetric key with factory B's manager over the same
// Fig 4 handshake used for devices; factory B then reads the trusted,
// non-tamperable recipe off its own tangle replica — no data silo, no
// central exchange.
//
// Run: ./build/examples/cross_factory
#include <cstdio>

#include "auth/keydist.h"
#include "factory/sensors.h"
#include "node/gateway.h"
#include "node/light_node.h"
#include "node/manager.h"

using namespace biot;

int main() {
  sim::Scheduler sched;
  sim::Network network(sched, std::make_unique<sim::FixedLatency>(0.004),
                       Rng(7));

  // --- Factory A: manager + gateway + one recipe sensor. -----------------
  const auto manager_a = crypto::Identity::deterministic(1);
  const auto manager_b = crypto::Identity::deterministic(2);
  const auto gw_a_identity = crypto::Identity::deterministic(3);
  const auto gw_b_identity = crypto::Identity::deterministic(4);
  const auto genesis = tangle::Tangle::make_genesis();

  node::Gateway gateway_a(1, gw_a_identity, manager_a.public_identity().sign_key,
                          genesis, network, {});
  node::Gateway gateway_b(2, gw_b_identity, manager_b.public_identity().sign_key,
                          genesis, network, {});
  gateway_a.attach();
  gateway_b.attach();
  // The public tangle: both factories' full nodes gossip with each other.
  gateway_a.add_peer(gateway_b.node_id());
  gateway_b.add_peer(gateway_a.node_id());

  node::Manager mgr_a(3, manager_a, gateway_a, network);
  node::Manager mgr_b(4, manager_b, gateway_b, network);
  mgr_a.attach();
  mgr_b.attach();

  node::LightNodeConfig mill_config;
  mill_config.profile = sim::DeviceProfile::pi3b_fig9();
  mill_config.collect_interval = 2.0;
  node::LightNode mill(10, crypto::Identity::deterministic(100),
                       gateway_a.node_id(), network, mill_config);

  factory::ProcessRecipeSensor recipe("recipe-mill-A");
  Rng sensor_rng(99);
  mill.set_data_source([&] { return recipe.sample(sched.now(), sensor_rng).encode(); });
  mill.enable_keydist(manager_a.public_identity().sign_key);

  if (!mgr_a.authorize({mill.public_identity()}).is_ok()) return 1;
  mill.start();
  sched.after(0.1, [&] {
    (void)mgr_a.distribute_key(mill.public_identity(), mill.node_id());
  });

  sched.run_until(30.0);
  std::printf("factory A published %llu recipe transactions (encrypted)\n",
              static_cast<unsigned long long>(mill.stats().accepted));
  std::printf("factory B's replica already has them via gossip: %zu txs\n",
              gateway_b.tangle().size());

  // --- Key sharing: manager B obtains the recipe key from manager A -----
  // via the same Fig 4 protocol, acting as the "device" side.
  crypto::Csprng a_rng(11), b_rng(22);
  auth::ManagerKeyDist sharer(manager_a, sched.clock(), a_rng);
  auth::DeviceKeyDist receiver(manager_b, manager_a.public_identity().sign_key,
                               sched.clock(), b_rng);
  // Share the *established* factory-A recipe key rather than a fresh one:
  // wrap it as the SKS of a new session by sealing it manually.
  // (ManagerKeyDist always generates a fresh SKS; for cross-factory sharing
  // we run the handshake and then use ITS key to envelope the recipe key.)
  const Bytes m1 = sharer.start_session(manager_b.public_identity());
  sched.run_until(30.1);  // replay guard wants strictly increasing timestamps
  auto m2 = receiver.handle_m1(m1);
  sched.run_until(30.2);
  auto m3 = sharer.handle_m2(manager_b.public_identity(), m2.value());
  sched.run_until(30.3);
  if (!receiver.handle_m3(m3.value()).is_ok()) return 1;

  const auto& recipe_key = mgr_a.session_key(mill.public_identity());
  const Bytes wrapped = auth::envelope_seal(receiver.key(), recipe_key.view(), a_rng);
  const auto unwrapped = auth::envelope_open(receiver.key(), wrapped);
  const auto shared_key = auth::SymmetricKey::from_view(unwrapped.value());
  std::printf("\nmanager B obtained the recipe key via a manager-to-manager "
              "Fig 4 handshake (%zu-byte wrapped key)\n",
              wrapped.size());

  // --- Factory B reads the recipe from ITS OWN replica. ------------------
  std::size_t read_back = 0;
  for (const auto& id : gateway_b.tangle().arrival_order()) {
    const auto* rec = gateway_b.tangle().find(id);
    if (!rec->tx.payload_encrypted) continue;
    const auto plain = auth::envelope_open(shared_key, rec->tx.payload);
    if (!plain) continue;
    const auto reading = factory::SensorReading::decode(plain.value());
    if (!reading) continue;
    if (++read_back == 1) {
      std::printf("\nfactory B decrypts factory A's recipe from its own "
                  "replica:\n  %s = %.1f %s (%s), tangle weight %zu\n",
                  reading.value().sensor.c_str(), reading.value().value,
                  reading.value().unit.c_str(), reading.value().status.c_str(),
                  gateway_b.tangle().cumulative_weight(id));
    }
  }
  std::printf("\nfactory B recovered %zu recipe readings — trusted because "
              "they are signed by factory A's machine and anchored in the "
              "shared tangle (non-tamperable, traceable), not because "
              "factory A's server says so.\n",
              read_back);
  return read_back > 0 ? 0 : 1;
}
