// Token transfers on the tangle: funding, payment, balance queries and what
// happens when someone tries to spend the same tokens twice (the paper's
// double-spending threat, Section III) — including the credit-PoW price the
// attacker pays afterwards.
//
// Run: ./build/examples/token_transfers
#include <cstdio>

#include "consensus/pow.h"
#include "node/gateway.h"
#include "node/manager.h"

using namespace biot;

namespace {
/// Builds, mines and signs a transfer transaction against current tips.
tangle::Transaction make_transfer(node::Gateway& gateway,
                                  const crypto::Identity& from,
                                  const crypto::Ed25519PublicKey& to,
                                  std::uint64_t amount, std::uint64_t sequence,
                                  consensus::Miner& miner) {
  tangle::Transaction tx;
  tx.type = tangle::TxType::kTransfer;
  tx.sender = from.public_identity().sign_key;
  const auto [t1, t2] = gateway.select_tips();
  tx.parent1 = t1;
  tx.parent2 = t2;
  tx.sequence = sequence;
  tx.transfer = tangle::Transfer{to, amount};
  tx.difficulty =
      static_cast<std::uint8_t>(gateway.required_difficulty(tx.sender));
  tx.signature = from.sign(tx.signing_bytes());
  tx.nonce = miner.mine(tx.parent1, tx.parent2, tx.difficulty)->nonce;
  return tx;
}
}  // namespace

int main() {
  sim::Scheduler sched;
  sim::Network network(sched, std::make_unique<sim::FixedLatency>(0.002), Rng(1));

  const auto manager_identity = crypto::Identity::deterministic(1);
  const auto gateway_identity = crypto::Identity::deterministic(2);
  const auto alice = crypto::Identity::deterministic(10);
  const auto bob = crypto::Identity::deterministic(11);
  const auto carol = crypto::Identity::deterministic(12);

  node::GatewayConfig config;
  config.credit.initial_difficulty = 6;  // snappy host-side mining
  node::Gateway gateway(1, gateway_identity,
                        manager_identity.public_identity().sign_key,
                        tangle::Tangle::make_genesis(), network, config);
  node::Manager manager(2, manager_identity, gateway, network);
  gateway.attach();
  manager.attach();
  if (!manager
           .authorize({alice.public_identity(), bob.public_identity(),
                       carol.public_identity()})
           .is_ok())
    return 1;

  // Genesis allocation (in production this comes from the snapshot state).
  gateway.ledger().credit(alice.public_identity().sign_key, 1000);
  auto balance = [&](const crypto::Identity& who) {
    return gateway.ledger().balance(who.public_identity().sign_key);
  };
  std::printf("genesis: alice=%llu bob=%llu carol=%llu\n",
              (unsigned long long)balance(alice), (unsigned long long)balance(bob),
              (unsigned long long)balance(carol));

  consensus::Miner miner;
  // Alice pays Bob 400.
  auto pay_bob = make_transfer(gateway, alice,
                               bob.public_identity().sign_key, 400, 0, miner);
  std::printf("\nalice -> bob 400: %s\n",
              gateway.submit(pay_bob).to_string().c_str());
  std::printf("balances: alice=%llu bob=%llu\n",
              (unsigned long long)balance(alice), (unsigned long long)balance(bob));

  // Bob pays Carol 150.
  auto pay_carol = make_transfer(gateway, bob,
                                 carol.public_identity().sign_key, 150, 0, miner);
  std::printf("bob -> carol 150: %s\n",
              gateway.submit(pay_carol).to_string().c_str());

  // Overdraft attempt.
  auto overdraft = make_transfer(gateway, bob,
                                 carol.public_identity().sign_key, 9999, 1, miner);
  std::printf("bob -> carol 9999 (overdraft): %s\n",
              gateway.submit(overdraft).to_string().c_str());

  // Double spend: Alice reuses sequence 1 for two different payments.
  std::printf("\nalice difficulty before attack: %d\n",
              gateway.required_difficulty(alice.public_identity().sign_key));
  auto honest = make_transfer(gateway, alice,
                              bob.public_identity().sign_key, 100, 1, miner);
  auto sneaky = make_transfer(gateway, alice,
                              carol.public_identity().sign_key, 100, 1, miner);
  std::printf("alice -> bob 100 (seq 1):   %s\n",
              gateway.submit(honest).to_string().c_str());
  std::printf("alice -> carol 100 (seq 1): %s\n",
              gateway.submit(sneaky).to_string().c_str());
  std::printf("alice difficulty after the double-spend: %d (max %d)\n",
              gateway.required_difficulty(alice.public_identity().sign_key),
              config.credit.max_difficulty);

  std::printf("\nfinal balances: alice=%llu bob=%llu carol=%llu "
              "(conserved: %llu)\n",
              (unsigned long long)balance(alice), (unsigned long long)balance(bob),
              (unsigned long long)balance(carol),
              (unsigned long long)(balance(alice) + balance(bob) + balance(carol)));
  std::printf("double-spends caught by this gateway: %llu\n",
              (unsigned long long)gateway.stats().rejected_conflict);
  return 0;
}
