// Quickstart: the smallest end-to-end B-IoT deployment.
//
// One gateway (full node), one manager, one IoT device (light node). Walks
// the paper's Fig 6 workflow explicitly:
//   1. the manager's key anchors the genesis configuration
//   2. the manager authorizes the device on-chain (Eqn 1)
//   4./5. the device fetches two tips, runs credit-based PoW and submits
//         sensor readings as tangle transactions
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "node/gateway.h"
#include "node/light_node.h"
#include "node/manager.h"

using namespace biot;

int main() {
  // --- Simulated substrate: event scheduler + 2 ms LAN. -----------------
  sim::Scheduler sched;
  sim::Network network(sched, std::make_unique<sim::FixedLatency>(0.002),
                       Rng(/*seed=*/1));

  // --- Identities. Every entity owns an Ed25519 signing pair (its ------
  // on-chain account) and an X25519 encryption pair (for key exchange).
  const auto manager_identity = crypto::Identity::deterministic(1);
  const auto gateway_identity = crypto::Identity::deterministic(2);
  const auto device_identity = crypto::Identity::deterministic(3);

  // --- Full node. The manager's public key is "hard-coded into the ------
  // genesis config": only that key may publish authorization lists.
  node::GatewayConfig gw_config;  // defaults = the paper's Section VI-A setup
  node::Gateway gateway(/*node id=*/1, gateway_identity,
                        manager_identity.public_identity().sign_key,
                        tangle::Tangle::make_genesis(), network, gw_config);
  gateway.attach();

  // --- Manager, co-located with its gateway (it IS a full node). --------
  node::Manager manager(/*node id=*/2, manager_identity, gateway, network);
  manager.attach();

  // --- IoT device: a Raspberry-Pi-class light node sampling a sensor ----
  // twice a second.
  node::LightNodeConfig dev_config;
  dev_config.profile = sim::DeviceProfile::pi3b_fig9();
  dev_config.collect_interval = 0.5;
  node::LightNode device(/*node id=*/10, device_identity, gateway.node_id(),
                         network, dev_config);
  device.set_data_source(
      [n = 0]() mutable { return to_bytes("temp=21." + std::to_string(n++)); });

  // --- Step 2: authorize the device on-chain. ---------------------------
  const auto status = manager.authorize({device.public_identity()});
  std::printf("authorization published: %s (authorized devices: %zu)\n",
              status.to_string().c_str(),
              gateway.auth_registry().authorized_count());

  // --- Steps 4/5: run the factory for 60 simulated seconds. -------------
  device.start();
  sched.run_until(60.0);

  std::printf("\nafter 60 simulated seconds:\n");
  std::printf("  transactions accepted : %llu\n",
              static_cast<unsigned long long>(device.stats().accepted));
  std::printf("  tangle size           : %zu transactions\n",
              gateway.tangle().size());
  std::printf("  device's difficulty   : %d (started at %d — honest activity "
              "earned easier PoW)\n",
              gateway.required_difficulty(device.public_identity().sign_key),
              gw_config.credit.initial_difficulty);

  // Read one of the device's readings back off the ledger.
  for (const auto& id : gateway.tangle().arrival_order()) {
    const auto* rec = gateway.tangle().find(id);
    if (rec->tx.type == tangle::TxType::kData) {
      std::printf("  first reading on-chain: \"%s\" (tx %s..., weight %zu)\n",
                  to_string(rec->tx.payload).c_str(),
                  id.hex().substr(0, 12).c_str(),
                  gateway.tangle().cumulative_weight(id));
      break;
    }
  }
  return 0;
}
