// Smart-factory case study (paper Section IV-A / V): two gateways, a
// manager, eight wireless sensors — temperature, vibration, machine status
// and sensitive process recipes — running for five simulated minutes.
//
// Shows: authorization bootstrap, symmetric-key distribution to sensitive
// devices (Fig 4), encrypted vs cleartext payloads on the public tangle,
// replica convergence across gateways, and the credit standing of every
// device at the end.
//
// Run: ./build/examples/smart_factory
#include <cstdio>

#include "factory/scenario.h"

using namespace biot;

int main() {
  factory::ScenarioConfig config;
  config.num_gateways = 2;
  config.num_devices = 8;
  config.device.collect_interval = 1.0;
  config.device.profile = sim::DeviceProfile::pi3b_fig9();
  config.seed = 2026;

  factory::SmartFactory factory(config);
  factory.bootstrap();

  std::printf("smart factory: %zu gateways, %zu devices\n",
              factory.gateway_count(), factory.device_count());
  for (std::size_t d = 0; d < factory.device_count(); ++d) {
    std::printf("  device %zu: %-18s %s\n", d, factory.sensor(d).name().c_str(),
                factory.sensor(d).sensitive() ? "[sensitive -> encrypted]"
                                              : "[public]");
  }

  std::printf("\nrunning 300 simulated seconds...\n");
  factory.run_until(300.0);

  // --- Ledger contents -----------------------------------------------------
  std::size_t encrypted = 0, cleartext = 0;
  const auto& tangle = factory.gateway(0).tangle();
  for (const auto& id : tangle.arrival_order()) {
    const auto* rec = tangle.find(id);
    if (rec->tx.type != tangle::TxType::kData) continue;
    (rec->tx.payload_encrypted ? encrypted : cleartext) += 1;
  }
  std::printf("\ntangle after 300 s: %zu transactions "
              "(%zu cleartext readings, %zu encrypted readings)\n",
              tangle.size(), cleartext, encrypted);
  std::printf("replica sizes: gateway0=%zu gateway1=%zu\n",
              factory.gateway(0).tangle().size(),
              factory.gateway(1).tangle().size());
  std::printf("throughput (steady state): %.2f tx/s\n",
              factory.throughput(30.0, 300.0));

  // --- Per-device credit standing -------------------------------------------
  std::printf("\nper-device standing (credit PoW):\n");
  for (std::size_t d = 0; d < factory.device_count(); ++d) {
    const auto key = factory.device(d).public_identity().sign_key;
    const auto& gw = factory.gateway(d % factory.gateway_count());
    std::printf("  device %zu: accepted=%-4llu difficulty=%-2d %s\n", d,
                static_cast<unsigned long long>(
                    factory.device(d).stats().accepted),
                gw.required_difficulty(key),
                factory.device(d).has_symmetric_key() ? "(holds factory key)"
                                                      : "");
  }

  // --- Decrypt one sensitive reading as the key-holding manager -------------
  for (const auto& id : tangle.arrival_order()) {
    const auto* rec = tangle.find(id);
    if (!rec->tx.payload_encrypted) continue;
    // Find which device sent it and fetch the manager's session key.
    for (std::size_t d = 0; d < factory.device_count(); ++d) {
      const auto pub = factory.device(d).public_identity();
      if (pub.sign_key != rec->tx.sender) continue;
      const auto& key = factory.manager().session_key(pub);
      const auto plain = auth::envelope_open(key, rec->tx.payload);
      const auto reading = factory::SensorReading::decode(plain.value());
      std::printf("\nmanager decrypts a recipe reading: %s = %.1f %s (%s)\n",
                  reading.value().sensor.c_str(), reading.value().value,
                  reading.value().unit.c_str(), reading.value().status.c_str());
      std::printf("(everyone else sees %zu opaque bytes)\n",
                  rec->tx.payload.size());
      return 0;
    }
  }
  return 0;
}
