// Consumer dashboard: a read-side client aggregating factory telemetry
// straight off the public tangle — no central data service, no trust in any
// single party (the data is signed by the sensors and anchored in the DAG).
//
// A consumer holding the factory's symmetric key (obtained from the manager
// via the Fig 4 handshake) also sees the sensitive recipe stream; everyone
// else sees ciphertext.
//
// Run: ./build/examples/consumer_dashboard
#include <cstdio>
#include <map>

#include "factory/scenario.h"
#include "node/consumer.h"

using namespace biot;

namespace {
struct Series {
  std::size_t count = 0;
  double min = 1e300, max = -1e300, sum = 0.0;
  void add(double v) {
    ++count;
    min = std::min(min, v);
    max = std::max(max, v);
    sum += v;
  }
};
}  // namespace

int main() {
  factory::ScenarioConfig config;
  config.num_devices = 8;
  config.device.collect_interval = 1.0;
  config.device.profile = sim::DeviceProfile::pi3b_fig9();

  factory::SmartFactory factory(config);
  factory.bootstrap();

  // The dashboard consumer, homed on gateway 1 (any replica serves reads).
  node::Consumer dashboard(900, crypto::Identity::deterministic(900),
                           factory.gateway(1).node_id(), factory.network());
  dashboard.attach();

  factory.run_until(120.0);

  // Hand the consumer the recipe key (in production: a Fig 4 handshake with
  // the manager — see examples/key_distribution).
  for (std::size_t d = 0; d < factory.device_count(); ++d) {
    if (factory.sensor(d).sensitive() && factory.device(d).has_symmetric_key()) {
      dashboard.install_key(
          factory.manager().session_key(factory.device(d).public_identity()));
      break;
    }
  }

  std::map<std::string, Series> series;
  std::size_t opaque = 0;
  dashboard.query({}, 0.0, 10000, [&](auto readings) {
    for (const auto& r : readings) {
      if (!r.decrypted) {
        ++opaque;
        continue;
      }
      const auto reading = factory::SensorReading::decode(r.plaintext);
      if (!reading) continue;
      series[reading.value().sensor + " (" + reading.value().unit + ")"].add(
          reading.value().value);
    }
  });
  factory.run_until(121.0);

  std::printf("factory telemetry after 120 s, read from gateway 1's replica:\n");
  std::printf("%-28s %8s %10s %10s %10s\n", "sensor", "n", "min", "mean",
              "max");
  for (const auto& [name, s] : series) {
    std::printf("%-28s %8zu %10.2f %10.2f %10.2f\n", name.c_str(), s.count,
                s.min, s.sum / static_cast<double>(s.count), s.max);
  }
  std::printf("\nopaque payloads (no key for them): %zu\n", opaque);
  std::printf("every row above is signed by its sensor and anchored under "
              "%zu transactions of cumulative weight — tamper-evident "
              "telemetry without a data silo.\n",
              factory.gateway(1).tangle().size());
  return series.empty() ? 1 : 0;
}
