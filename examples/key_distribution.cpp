// Fig 4 walkthrough: symmetric secret key distribution without a central
// trust server, message by message, with the attacks the protocol defeats.
//
//   M1  M -> D : Enc_PKD{ sign_SKM(SKS, TS1, nonce_a) }
//   M2  D -> M : Enc_SKS{ sign_SKD(nonce_b, TS2), nonce_a }
//   M3  M -> D : Enc_SKS{ sign_SKM(nonce_b, TS3) }
//
// Run: ./build/examples/key_distribution
#include <cstdio>

#include "auth/keydist.h"
#include "common/clock.h"

using namespace biot;
using namespace biot::auth;

int main() {
  SimClock clock;
  const auto manager_identity = crypto::Identity::deterministic(1);
  const auto device_identity = crypto::Identity::deterministic(2);
  crypto::Csprng manager_rng(11), device_rng(22);

  ManagerKeyDist manager(manager_identity, clock, manager_rng);
  DeviceKeyDist device(device_identity,
                       manager_identity.public_identity().sign_key, clock,
                       device_rng);

  std::printf("manager identity: %s...\n",
              manager_identity.public_identity().short_id().c_str());
  std::printf("device identity : %s...\n\n",
              device_identity.public_identity().short_id().c_str());

  // --- M1: manager generates SKS, signs it with its secret key, seals ----
  // the bundle to the device's public encryption key (ECIES over X25519).
  const Bytes m1 = manager.start_session(device_identity.public_identity());
  std::printf("M1 (manager -> device): %zu bytes — Enc_PKD{sign_SKM(SKS, TS, "
              "nonce_a)}\n",
              m1.size());

  // --- M2: device opens M1, checks the manager signature + timestamp, ----
  // answers the nonce_a challenge under the new symmetric key.
  clock.advance_by(0.05);
  auto m2 = device.handle_m1(m1);
  std::printf("M2 (device -> manager): %zu bytes — Enc_SKS{sign_SKD(nonce_b, "
              "TS), nonce_a}\n",
              m2.value().size());

  // --- M3: manager verifies nonce_a came back, answers nonce_b. ----------
  clock.advance_by(0.05);
  auto m3 = manager.handle_m2(device_identity.public_identity(), m2.value());
  std::printf("M3 (manager -> device): %zu bytes — Enc_SKS{sign_SKM(nonce_b, "
              "TS)}\n",
              m3.value().size());

  clock.advance_by(0.05);
  const auto status = device.handle_m3(m3.value());
  std::printf("\nhandshake complete: %s\n", status.to_string().c_str());
  std::printf("shared key (device) : %s...\n",
              device.key().hex().substr(0, 16).c_str());
  std::printf("shared key (manager): %s...\n",
              manager.session_key(device_identity.public_identity())
                  .hex()
                  .substr(0, 16)
                  .c_str());

  // --- The key in use: sensitive sensor data on a public ledger. ----------
  const Bytes reading = to_bytes("recipe: spindle 12050 rpm, feed 0.2 mm");
  const Bytes sealed = envelope_seal(device.key(), reading, device_rng);
  std::printf("\nsensor reading encrypted for the chain: %zu -> %zu bytes\n",
              reading.size(), sealed.size());
  const auto opened = envelope_open(
      manager.session_key(device_identity.public_identity()), sealed);
  std::printf("manager decrypts: \"%s\"\n", to_string(opened.value()).c_str());

  // --- Attacks the protocol defeats. ---------------------------------------
  std::printf("\nattack resistance:\n");

  // Replay of M1.
  const auto replay = device.handle_m1(m1);
  std::printf("  replayed M1      -> %s\n", replay.status().to_string().c_str());

  // Tampered M3.
  Bytes bad_m3 = m3.value();
  bad_m3[10] ^= 0x01;
  std::printf("  tampered M3      -> %s\n",
              device.handle_m3(bad_m3).to_string().c_str());

  // An impostor manager (wrong signing key).
  crypto::Csprng impostor_rng(33);
  const auto impostor = crypto::Identity::deterministic(9);
  ManagerKeyDist fake(impostor, clock, impostor_rng);
  const Bytes forged = fake.start_session(device_identity.public_identity());
  std::printf("  forged M1        -> %s\n",
              device.handle_m1(forged).status().to_string().c_str());

  // Key rotation is one more handshake.
  const Bytes m1b = manager.start_session(device_identity.public_identity());
  clock.advance_by(0.05);
  auto m2b = device.handle_m1(m1b);
  clock.advance_by(0.05);
  auto m3b = manager.handle_m2(device_identity.public_identity(), m2b.value());
  clock.advance_by(0.05);
  (void)device.handle_m3(m3b.value());
  std::printf("\nkey rotated: new key %s... (old readings stay sealed under "
              "the old key)\n",
              device.key().hex().substr(0, 16).c_str());
  return 0;
}
