// Attack demo: every threat from the paper's Section III, live.
//
//   - Sybil/DDoS: unauthorized devices hammer a gateway and are refused
//   - double-spending: a compromised device reuses a sequence slot
//   - lazy tips: the same device approves a stale pair instead of fresh tips
//   - single point of failure: a gateway crashes mid-run
//
// Watch the credit mechanism throttle the attacker while honest devices
// keep their fast PoW.
//
// Run: ./build/examples/attack_demo
#include <cstdio>

#include "factory/scenario.h"

using namespace biot;

namespace {
void report(factory::SmartFactory& factory, const char* moment) {
  std::printf("\n--- %s (t=%.0fs) ---\n", moment, factory.scheduler().now());
  for (std::size_t d = 0; d < factory.device_count(); ++d) {
    const auto key = factory.device(d).public_identity().sign_key;
    const auto& stats = factory.device(d).stats();
    std::printf("  device %zu: accepted=%-4llu rejected=%-3llu difficulty=%d\n",
                d, static_cast<unsigned long long>(stats.accepted),
                static_cast<unsigned long long>(stats.rejected),
                factory.gateway(0).required_difficulty(key));
  }
  std::uint64_t conflicts = 0, lazy = 0, unauthorized = 0;
  for (std::size_t g = 0; g < factory.gateway_count(); ++g) {
    conflicts += factory.gateway(g).stats().rejected_conflict;
    lazy += factory.gateway(g).stats().lazy_detected;
    unauthorized += factory.gateway(g).stats().rejected_unauthorized;
  }
  std::printf("  gateways: double-spends caught=%llu lazy-tips detected=%llu "
              "unauthorized refused=%llu\n",
              static_cast<unsigned long long>(conflicts),
              static_cast<unsigned long long>(lazy),
              static_cast<unsigned long long>(unauthorized));
}
}  // namespace

int main() {
  factory::ScenarioConfig config;
  config.num_gateways = 2;
  config.num_devices = 3;
  config.distribute_keys = false;
  config.device.collect_interval = 0.5;
  config.device.profile = sim::DeviceProfile::pi3b_fig9();

  factory::SmartFactory factory(config);
  factory.bootstrap();

  // A Sybil swarm: five forged identities flooding tips requests.
  for (int i = 0; i < 5; ++i) {
    auto sybil = config.device;
    sybil.collect_interval = 0.1;
    factory.add_unauthorized_device(sybil);
  }

  // Device 2 goes rogue: double-spend at t=20, lazy tips at t=45.
  factory.device(2).schedule_attack(20.0, node::AttackKind::kDoubleSpend);
  factory.device(2).schedule_attack(45.0, node::AttackKind::kLazyTips);

  factory.run_until(15.0);
  report(factory, "steady state, attacks pending");

  factory.run_until(30.0);
  report(factory, "after the double-spend");
  std::printf("  => device 2's PoW difficulty spiked; its next transactions "
              "cost ~2^14 hashes each\n");

  factory.run_until(60.0);
  report(factory, "after the lazy-tips attack");

  // Crash gateway 1 — the paper's single-point-of-failure scenario.
  factory.network().detach(factory.gateway(1).node_id());
  std::printf("\n*** gateway 1 crashed ***\n");
  factory.run_until(90.0);
  report(factory, "after the gateway crash");
  std::printf("  surviving replica still holds the full ledger: %zu txs\n",
              factory.gateway(0).tangle().size());

  std::printf("\nsummary: sybils attached 0 transactions, the attacker was "
              "throttled, honest devices never slowed down, and the ledger "
              "survived a full-node failure.\n");
  return 0;
}
