// Full-node maintenance: persistence, local snapshots and pruning — the
// storage story behind the paper's "storage limitations" future-work item.
//
//   1. run a factory and persist the gateway's replica to disk
//   2. cold-restart the replica from the file (every signature and PoW is
//      re-verified during reload)
//   3. archive old transactions and prune the hot set to a snapshot whose
//      genesis commits to the ledger/authorization state
//   4. export the DAG to Graphviz DOT for inspection
//
// Run: ./build/examples/node_maintenance
#include <cstdio>

#include "factory/scenario.h"
#include "storage/archive.h"
#include "storage/snapshot.h"
#include "storage/tangle_io.h"

using namespace biot;

int main() {
  factory::ScenarioConfig config;
  config.num_devices = 4;
  config.distribute_keys = false;
  config.device.collect_interval = 0.5;
  config.device.profile = sim::DeviceProfile::pi3b_fig9();

  factory::SmartFactory factory(config);
  factory.bootstrap();
  factory.run_until(60.0);

  const auto& tangle = factory.gateway(0).tangle();
  std::printf("gateway replica after 60 s: %zu transactions\n", tangle.size());

  // --- 1. persist ---------------------------------------------------------
  const std::string tangle_path = "/tmp/biot_example_tangle.bin";
  if (!storage::save_tangle(tangle, tangle_path).is_ok()) return 1;
  std::printf("saved to %s (%zu bytes)\n", tangle_path.c_str(),
              storage::serialize_tangle(tangle).size());

  // --- 2. cold restart -----------------------------------------------------
  const auto reloaded = storage::load_tangle(tangle_path);
  if (!reloaded) {
    std::printf("reload failed: %s\n", reloaded.status().to_string().c_str());
    return 1;
  }
  std::printf("cold restart: %zu transactions reloaded, %zu tips, every "
              "signature and PoW re-verified\n",
              reloaded.value().size(), reloaded.value().tips().size());

  // --- 3. snapshot + prune --------------------------------------------------
  std::vector<tangle::AccountKey> accounts;
  std::vector<crypto::PublicIdentity> authorized;
  for (std::size_t d = 0; d < factory.device_count(); ++d) {
    accounts.push_back(factory.device(d).public_identity().sign_key);
    authorized.push_back(factory.device(d).public_identity());
  }
  const auto state = storage::capture_state(60.0, factory.gateway(0).ledger(),
                                            accounts, authorized);
  auto pruned = storage::prune(tangle, state, /*cutoff=*/45.0);

  const std::string archive_path = "/tmp/biot_example_archive.bin";
  std::remove(archive_path.c_str());
  {
    storage::ArchiveWriter archive(archive_path);
    for (const auto& id : pruned.archived) {
      const auto* rec = tangle.find(id);
      if (!archive.append(rec->tx, rec->arrival).is_ok()) return 1;
    }
  }
  std::printf("\nsnapshot at t=60 (cutoff 45): %zu txs archived to %s, "
              "state hash %s...\n",
              pruned.archived.size(), archive_path.c_str(),
              state.state_hash().hex().substr(0, 16).c_str());
  std::printf("hot set restarts from a 1-tx snapshot genesis committing to "
              "that state (id %s...)\n",
              pruned.tangle.genesis_id().hex().substr(0, 16).c_str());

  const auto archived = storage::read_archive(archive_path);
  std::printf("archive verifies: %zu records, all digests good\n",
              archived.value().size());

  // --- 4. DOT export ---------------------------------------------------------
  const std::string dot = storage::to_dot(tangle, /*max_nodes=*/40);
  const std::string dot_path = "/tmp/biot_example_tangle.dot";
  std::FILE* f = std::fopen(dot_path.c_str(), "w");
  std::fwrite(dot.data(), 1, dot.size(), f);
  std::fclose(f);
  std::printf("\nDAG exported to %s (render with: dot -Tsvg %s -o tangle.svg)\n",
              dot_path.c_str(), dot_path.c_str());
  return 0;
}
